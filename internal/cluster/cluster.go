// Package cluster implements the distributed CPU backend of PyTFHE over
// real TCP sockets — the role Ray plays in the paper. A Coordinator listens
// for Worker connections, broadcasts the public evaluation key once, then
// drives the wavefront schedule of Algorithm 1: every gate of a ready level
// is submitted to a worker together with its input ciphertexts, and the
// result ciphertext travels back, exactly the per-gate communication
// pattern the paper profiles in Fig. 7 (≈2.46 KB per ciphertext).
//
// Messages are framed with encoding/gob. Workers may host multiple slots
// (cores); each slot owns a gate engine over the shared cloud key.
package cluster

import (
	"encoding/gob"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"pytfhe/internal/circuit"
	"pytfhe/internal/exec"
	"pytfhe/internal/logic"
	"pytfhe/internal/tfhe/boot"
	"pytfhe/internal/tfhe/gate"
	"pytfhe/internal/tfhe/lwe"
	"pytfhe/internal/wire"
)

func init() { wire.Register() }

// ErrWorkerLost marks a worker that died mid-run (connection error or a
// missed per-job read deadline). The coordinator drops the worker and
// requeues its batch onto the survivors; the error only surfaces when no
// workers remain.
var ErrWorkerLost = errors.New("cluster: worker lost")

// DefaultJobTimeout is the per-job read deadline when Coordinator.JobTimeout
// is left zero: generous enough for a wide default128 wavefront batch, small
// enough that a hung worker cannot stall a run forever.
const DefaultJobTimeout = 2 * time.Minute

// GateTask ships one gate evaluation: the gate kind and its two input
// ciphertexts.
type GateTask struct {
	Kind uint8
	A, B *lwe.Sample
}

// Message is the single wire envelope; exactly one field is set.
type Message struct {
	Hello  *Hello
	Key    *boot.CloudKey
	Job    *Job
	Result *JobResult
	Error  string
	Bye    bool
}

// Hello announces a worker and its slot (core) count.
type Hello struct {
	Slots int
}

// Job carries a batch of gate tasks for one wavefront.
type Job struct {
	Seq   int
	Tasks []GateTask
}

// JobResult returns the output ciphertexts of a Job, in task order.
type JobResult struct {
	Seq     int
	Outputs []*lwe.Sample
}

// Stats summarizes a distributed run.
type Stats struct {
	Workers     int
	Slots       int
	Levels      int
	Gates       int
	Bootstraps  int
	WorkersLost int // workers dropped mid-run (batches requeued on survivors)
	Elapsed     time.Duration
	BytesSent   int64 // ciphertext payload shipped to workers (estimate)
}

// Coordinator owns the listening socket and the connected workers.
type Coordinator struct {
	ck       *boot.CloudKey
	ln       net.Listener
	mu       sync.Mutex
	workers  []*workerConn
	LastStat Stats
	// JobTimeout is the per-job read deadline; a worker that does not
	// answer a job within it is declared lost and its batch is requeued on
	// the survivors. Zero means DefaultJobTimeout.
	JobTimeout time.Duration
}

type workerConn struct {
	conn  net.Conn
	enc   *gob.Encoder
	dec   *gob.Decoder
	slots int
}

// NewCoordinator starts listening on addr (e.g. "127.0.0.1:0"). The cloud
// key is broadcast to every worker as it joins.
func NewCoordinator(ck *boot.CloudKey, addr string) (*Coordinator, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("cluster: listen: %w", err)
	}
	return &Coordinator{ck: ck, ln: ln}, nil
}

// Addr returns the coordinator's listening address.
func (c *Coordinator) Addr() string { return c.ln.Addr().String() }

// AcceptWorkers blocks until n workers have joined (each already holding
// the broadcast key).
func (c *Coordinator) AcceptWorkers(n int) error {
	for c.workerCount() < n {
		conn, err := c.ln.Accept()
		if err != nil {
			return fmt.Errorf("cluster: accept: %w", err)
		}
		w := &workerConn{conn: conn, enc: gob.NewEncoder(conn), dec: gob.NewDecoder(conn)}
		var hello Message
		if err := w.dec.Decode(&hello); err != nil || hello.Hello == nil {
			closeErr := conn.Close()
			return errors.Join(fmt.Errorf("cluster: bad hello from %s: %v", conn.RemoteAddr(), err), closeErr)
		}
		w.slots = hello.Hello.Slots
		if w.slots < 1 {
			w.slots = 1
		}
		// Broadcast the evaluation key to the new worker.
		if err := w.enc.Encode(Message{Key: c.ck}); err != nil {
			closeErr := conn.Close()
			return errors.Join(fmt.Errorf("cluster: key broadcast: %w", err), closeErr)
		}
		c.mu.Lock()
		c.workers = append(c.workers, w)
		c.mu.Unlock()
	}
	return nil
}

func (c *Coordinator) workerCount() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.workers)
}

// dropWorker removes a dead worker from the roster and closes its
// connection; subsequent dispatch rounds no longer see it.
func (c *Coordinator) dropWorker(w *workerConn) {
	c.mu.Lock()
	for i, cur := range c.workers {
		if cur == w {
			c.workers = append(c.workers[:i], c.workers[i+1:]...)
			break
		}
	}
	c.mu.Unlock()
	// Audited (see DESIGN.md §13): dropWorker only runs after the
	// connection already failed, so Close can report nothing the caller
	// doesn't know; Coordinator.Close, by contrast, joins every error.
	//lint:ignore discarded-error evicting a dead worker; the close error carries no information
	w.conn.Close()
}

// Close shuts down the coordinator and asks workers to exit. Teardown
// continues past individual failures; every error is reported, joined.
func (c *Coordinator) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	var errs []error
	for _, w := range c.workers {
		if err := w.enc.Encode(Message{Bye: true}); err != nil {
			errs = append(errs, fmt.Errorf("cluster: bye to %s: %w", w.conn.RemoteAddr(), err))
		}
		if err := w.conn.Close(); err != nil {
			errs = append(errs, fmt.Errorf("cluster: close %s: %w", w.conn.RemoteAddr(), err))
		}
	}
	c.workers = nil
	errs = append(errs, c.ln.Close())
	return errors.Join(errs...)
}

// Name identifies the backend in reports.
func (c *Coordinator) Name() string {
	return fmt.Sprintf("cluster(%d workers)", c.workerCount())
}

// Run executes the netlist over the connected workers using the wavefront
// schedule. It implements the backend.Backend contract.
func (c *Coordinator) Run(nl *circuit.Netlist, inputs []*lwe.Sample) ([]*lwe.Sample, error) {
	// Inputs are validated before the worker-count check so callers get the
	// typed exec errors (nil input, bad dimension) even on an empty cluster.
	st, err := exec.NewState(nl, inputs, c.ck.Params.LWEDimension)
	if err != nil {
		return nil, err
	}
	c.mu.Lock()
	workers := append([]*workerConn(nil), c.workers...)
	c.mu.Unlock()
	if len(workers) == 0 {
		return nil, fmt.Errorf("cluster: no workers connected")
	}
	start := time.Now()

	totalSlots := 0
	for _, w := range workers {
		totalSlots += w.slots
	}
	values := st.Values

	stats := Stats{Workers: len(workers), Slots: totalSlots, Gates: len(nl.Gates)}
	for _, g := range nl.Gates {
		if g.Kind.NeedsBootstrap() {
			stats.Bootstraps++
		}
	}
	ctBytes := int64(c.ck.Params.CiphertextBytes())
	jobTimeout := c.JobTimeout
	if jobTimeout <= 0 {
		jobTimeout = DefaultJobTimeout
	}
	levels := nl.Levels()
	stats.Levels = len(levels)
	seq := 0
	for _, level := range levels {
		// Dispatch the level, requeueing any lost worker's batch onto the
		// survivors until every gate of the wavefront has a result. The
		// run only fails once no workers remain (or a worker reports an
		// application error, which no retry would fix).
		remaining := level
		for len(remaining) > 0 {
			c.mu.Lock()
			workers = append(workers[:0:0], c.workers...)
			c.mu.Unlock()
			if len(workers) == 0 {
				return nil, fmt.Errorf("cluster: no workers left for level batch of %d gates: %w", len(remaining), ErrWorkerLost)
			}
			// Partition the batch across live workers proportionally to
			// their slot counts.
			parts := partition(remaining, workers)
			type reply struct {
				w    *workerConn
				res  *JobResult
				err  error
				lost bool
				part []int
			}
			ch := make(chan reply, len(workers))
			launched := 0
			for wi, part := range parts {
				if len(part) == 0 {
					continue
				}
				launched++
				tasks := make([]GateTask, len(part))
				for ti, gi := range part {
					g := nl.Gates[gi]
					tasks[ti] = GateTask{Kind: uint8(g.Kind), A: values[g.A], B: values[g.B]}
					stats.BytesSent += 3 * ctBytes
				}
				go func(w *workerConn, wi, seq int, tasks []GateTask, part []int) {
					if err := w.enc.Encode(Message{Job: &Job{Seq: seq, Tasks: tasks}}); err != nil {
						ch <- reply{w: w, lost: true, part: part,
							err: fmt.Errorf("cluster: send to worker %d: %w", wi, err)}
						return
					}
					// The per-job read deadline turns a hung or silently
					// dead worker into a detectable loss instead of a
					// coordinator that blocks forever. A connection that
					// cannot take a deadline is already broken: same loss.
					if err := w.conn.SetReadDeadline(time.Now().Add(jobTimeout)); err != nil {
						ch <- reply{w: w, lost: true, part: part,
							err: fmt.Errorf("cluster: worker %d deadline: %w", wi, err)}
						return
					}
					var msg Message
					err := w.dec.Decode(&msg)
					if cerr := w.conn.SetReadDeadline(time.Time{}); err == nil && cerr != nil {
						err = fmt.Errorf("cluster: worker %d clear deadline: %w", wi, cerr)
					}
					if err != nil {
						ch <- reply{w: w, lost: true, part: part,
							err: fmt.Errorf("cluster: receive from worker %d: %w", wi, err)}
						return
					}
					if msg.Error != "" {
						ch <- reply{w: w, err: fmt.Errorf("cluster: worker %d: %s", wi, msg.Error)}
						return
					}
					if msg.Result == nil || len(msg.Result.Outputs) != len(tasks) {
						ch <- reply{w: w, lost: true, part: part,
							err: fmt.Errorf("cluster: worker %d returned malformed result", wi)}
						return
					}
					ch <- reply{w: w, res: msg.Result, part: part}
				}(workers[wi], wi, seq, tasks, part)
			}
			seq++
			var retry []int
			var appErr error
			for i := 0; i < launched; i++ {
				r := <-ch
				switch {
				case r.lost:
					c.dropWorker(r.w)
					stats.WorkersLost++
					retry = append(retry, r.part...)
				case r.err != nil:
					appErr = r.err
				default:
					for ti, gi := range r.part {
						values[nl.GateID(gi)] = r.res.Outputs[ti]
					}
				}
			}
			if appErr != nil {
				return nil, appErr
			}
			remaining = retry
		}
		// The wavefront is complete: drop drained operands so coordinator
		// memory follows the live frontier. The ciphertexts came from remote
		// workers, so there is no local free list to return them to.
		for _, gi := range level {
			st.Release(nl.Gates[gi].A, nil)
			st.Release(nl.Gates[gi].B, nil)
		}
	}

	outs, err := st.Collect(c.ck.Params.LWEDimension)
	if err != nil {
		return nil, err
	}
	stats.Elapsed = time.Since(start)
	c.LastStat = stats
	return outs, nil
}

// partition splits a level's gate indices across workers in proportion to
// slots.
func partition(level []int, workers []*workerConn) [][]int {
	total := 0
	for _, w := range workers {
		total += w.slots
	}
	parts := make([][]int, len(workers))
	off := 0
	for wi, w := range workers {
		share := len(level) * w.slots / total
		if wi == len(workers)-1 {
			share = len(level) - off
		}
		parts[wi] = level[off : off+share]
		off += share
	}
	return parts
}

// Worker joins a coordinator and serves gate jobs until the connection
// closes or a Bye message arrives.
type Worker struct {
	slots int
}

// NewWorker returns a worker that will evaluate jobs on `slots` parallel
// engines.
func NewWorker(slots int) *Worker {
	if slots < 1 {
		slots = 1
	}
	return &Worker{slots: slots}
}

// Serve dials the coordinator and processes jobs until shutdown. It blocks.
func (w *Worker) Serve(addr string) error {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return fmt.Errorf("cluster: dial %s: %w", addr, err)
	}
	defer conn.Close()
	enc := gob.NewEncoder(conn)
	dec := gob.NewDecoder(conn)
	if err := enc.Encode(Message{Hello: &Hello{Slots: w.slots}}); err != nil {
		return fmt.Errorf("cluster: hello: %w", err)
	}
	var keyMsg Message
	if err := dec.Decode(&keyMsg); err != nil || keyMsg.Key == nil {
		return fmt.Errorf("cluster: expected key broadcast, got %v (%v)", keyMsg, err)
	}
	engines := make([]*gate.Engine, w.slots)
	for i := range engines {
		engines[i] = gate.NewEngine(keyMsg.Key)
	}

	for {
		var msg Message
		if err := dec.Decode(&msg); err != nil {
			return nil // connection closed: normal shutdown
		}
		switch {
		case msg.Bye:
			return nil
		case msg.Job != nil:
			outs, err := w.evalJob(engines, keyMsg.Key, msg.Job)
			if err != nil {
				if err := enc.Encode(Message{Error: err.Error()}); err != nil {
					return err
				}
				continue
			}
			if err := enc.Encode(Message{Result: &JobResult{Seq: msg.Job.Seq, Outputs: outs}}); err != nil {
				return err
			}
		default:
			if err := enc.Encode(Message{Error: "unexpected message"}); err != nil {
				return err
			}
		}
	}
}

func (w *Worker) evalJob(engines []*gate.Engine, ck *boot.CloudKey, job *Job) ([]*lwe.Sample, error) {
	outs := make([]*lwe.Sample, len(job.Tasks))
	dim := ck.Params.LWEDimension
	var firstErr error
	var mu sync.Mutex
	var wg sync.WaitGroup
	chunk := (len(job.Tasks) + len(engines) - 1) / len(engines)
	for s := 0; s < len(engines) && s*chunk < len(job.Tasks); s++ {
		lo, hi := s*chunk, (s+1)*chunk
		if hi > len(job.Tasks) {
			hi = len(job.Tasks)
		}
		wg.Add(1)
		go func(eng *gate.Engine, lo, hi int) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				t := job.Tasks[i]
				out := lwe.NewSample(dim)
				if err := eng.Binary(logic.Kind(t.Kind), out, t.A, t.B); err != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					mu.Unlock()
					return
				}
				outs[i] = out
			}
		}(engines[s], lo, hi)
	}
	wg.Wait()
	return outs, firstErr
}
