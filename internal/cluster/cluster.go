// Package cluster implements the distributed CPU backend of PyTFHE over
// real TCP sockets — the role Ray plays in the paper. A Coordinator listens
// for Worker connections, broadcasts the public evaluation key once, then
// drives the wavefront schedule of Algorithm 1: every gate of a ready level
// is submitted to a worker together with its input ciphertexts, and the
// result ciphertext travels back, exactly the per-gate communication
// pattern the paper profiles in Fig. 7 (≈2.46 KB per ciphertext).
//
// Messages are framed with encoding/gob. Workers may host multiple slots
// (cores); each slot owns a gate engine over the shared cloud key.
//
// Two execution paths share the connection: the legacy per-gate dispatch
// (Run), and sharded plan replay (RunSharded), where each worker holds a
// content-addressed slice of the compiled plan and only boundary
// ciphertexts travel per run. See DESIGN.md §14.
package cluster

import (
	"context"
	"encoding/gob"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"pytfhe/internal/circuit"
	"pytfhe/internal/exec"
	"pytfhe/internal/logic"
	"pytfhe/internal/shard"
	"pytfhe/internal/tfhe/boot"
	"pytfhe/internal/tfhe/gate"
	"pytfhe/internal/tfhe/lwe"
	"pytfhe/internal/wire"
)

func init() { wire.Register() }

// ProtoVersion is the coordinator↔worker protocol revision. Version 2
// added the Welcome handshake (version + key-hash check) and the sharded
// plan-replay messages; v1 peers are rejected with a typed error instead
// of a gob decode failure downstream.
const ProtoVersion = 2

// Typed handshake and transport errors. Callers match with errors.Is.
var (
	// ErrWorkerLost marks a worker that died mid-run (connection error or
	// a missed per-job read deadline). The coordinator drops the worker
	// and requeues its work onto the survivors; the error only surfaces
	// when no workers remain.
	ErrWorkerLost = errors.New("cluster: worker lost")
	// ErrDial marks a worker that exhausted its dial-retry budget without
	// ever reaching the coordinator.
	ErrDial = errors.New("cluster: coordinator unreachable")
	// ErrHandshake marks a malformed join: the peer spoke, but not the
	// Hello/Welcome/Key sequence the protocol requires.
	ErrHandshake = errors.New("cluster: handshake failed")
	// ErrVersionMismatch marks a peer running a different ProtoVersion.
	ErrVersionMismatch = errors.New("cluster: protocol version mismatch")
	// ErrKeyMismatch marks a worker whose received cloud key does not hash
	// to the coordinator's advertised key — evaluating under it would
	// produce garbage ciphertexts, so the worker refuses to serve.
	ErrKeyMismatch = errors.New("cluster: cloud key mismatch")
)

// DefaultJobTimeout is the per-job read deadline when Coordinator.JobTimeout
// is left zero: generous enough for a wide default128 wavefront batch, small
// enough that a hung worker cannot stall a run forever.
const DefaultJobTimeout = 2 * time.Minute

// DefaultDialTimeout bounds a worker's dial-retry loop when
// Worker.DialTimeout is left zero.
const DefaultDialTimeout = 15 * time.Second

// GateTask ships one gate evaluation: the gate kind and its two input
// ciphertexts for a classic gate, or (Arity != 0) a k-input LUT with its
// truth table and up to one extra operand. C travels only at arity 3, so
// classic tasks keep their pre-LUT wire size.
type GateTask struct {
	Kind  uint8
	A, B  *lwe.Sample
	C     *lwe.Sample // third LUT operand (Arity 3 only)
	TT    uint8       // LUT truth table (Arity >= 2 only)
	Arity uint8       // 0: classic gate; 2..3: k-input LUT
}

// Message is the single wire envelope; exactly one field is set.
type Message struct {
	Hello   *Hello
	Welcome *Welcome
	Key     *boot.CloudKey
	Job     *Job
	Result  *JobResult

	// Sharded plan-replay path (protocol v2).
	ShardInit  *ShardInit
	ShardData  *shard.Shard
	ShardReady *ShardReady
	Step       *ShardStep
	StepResult *ShardStepResult
	Replay     *ShardReplay

	Error string
	Bye   bool
}

// Hello announces a worker: its slot (core) count and protocol version.
type Hello struct {
	Slots   int
	Version int
}

// Welcome acknowledges a Hello before the key broadcast. KeyHash lets the
// worker verify the key it is about to receive matches what the
// coordinator's clients encrypted against.
type Welcome struct {
	Version int
	KeyHash string
}

// Job carries a batch of gate tasks for one wavefront.
type Job struct {
	Seq   int
	Tasks []GateTask
}

// JobResult returns the output ciphertexts of a Job, in task order.
type JobResult struct {
	Seq     int
	Outputs []*lwe.Sample
}

// Stats summarizes a distributed run. BytesSent keeps the paper's Fig. 7
// per-ciphertext estimate (3 × params.CiphertextBytes per gate task); the
// WireBytes counters are measured at the socket via wire.Meter, so framing
// and key traffic show up there but not in the estimate.
type Stats struct {
	Workers     int
	Slots       int
	Levels      int
	Gates       int
	Bootstraps  int
	WorkersLost int // workers dropped mid-run (work requeued on survivors)
	Elapsed     time.Duration
	BytesSent   int64 // ciphertext payload shipped to workers (estimate)

	SamplesSent     int64 // ciphertexts shipped to workers this run
	SamplesReceived int64 // ciphertexts returned by workers this run
	WireBytesSent   int64 // measured bytes written to worker sockets
	WireBytesRecv   int64 // measured bytes read from worker sockets

	// Sharded-replay counters (RunSharded only).
	ShardHits         int   // shards already resident on their worker
	ShardMisses       int   // shards shipped because the worker lacked them
	ShardReships      int   // shards re-installed on a survivor after a loss
	ShardBytesShipped int64 // measured bytes of shard program shipment
	BoundaryBytes     int64 // estimated input+boundary ciphertext traffic
}

// Totals aggregates counters across every run of a coordinator's lifetime;
// the serve daemon reports them in its Stats RPC.
type Totals struct {
	GateRuns      int64
	ShardRuns     int64
	ShardHits     int64
	ShardMisses   int64
	ShardReships  int64
	WireBytesSent int64
	WireBytesRecv int64
	BoundaryBytes int64
	WorkersLost   int64
}

// Coordinator owns the listening socket and the connected workers.
type Coordinator struct {
	ck       *boot.CloudKey
	keyHash  string
	ln       net.Listener
	mu       sync.Mutex
	workers  []*workerConn
	pending  []*workerConn // greeted before the key was bound (serve path)
	plans    map[shardKey]*shard.Sharding
	totals   Totals
	LastStat Stats
	// JobTimeout is the per-job read deadline; a worker that does not
	// answer a job within it is declared lost and its batch is requeued on
	// the survivors. Zero means DefaultJobTimeout.
	JobTimeout time.Duration
}

type workerConn struct {
	conn  net.Conn
	meter *wire.Meter
	enc   *gob.Encoder
	dec   *gob.Decoder
	slots int
}

// NewCoordinator starts listening on addr (e.g. "127.0.0.1:0"). The cloud
// key is broadcast to every worker as it joins.
func NewCoordinator(ck *boot.CloudKey, addr string) (*Coordinator, error) {
	c, err := NewPendingCoordinator(addr)
	if err != nil {
		return nil, err
	}
	if err := c.SetKey(ck); err != nil {
		return nil, errors.Join(err, c.ln.Close())
	}
	return c, nil
}

// NewPendingCoordinator starts listening without a cloud key. Workers that
// join before SetKey are parked after their Hello and complete the
// handshake the moment the key binds — the daemon path, where the key
// arrives with the first client session.
func NewPendingCoordinator(addr string) (*Coordinator, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("cluster: listen: %w", err)
	}
	return &Coordinator{ln: ln}, nil
}

// SetKey binds the cloud key and completes the handshake of every parked
// worker. Binding a second, different key is an error; rebinding the same
// key is a no-op.
func (c *Coordinator) SetKey(ck *boot.CloudKey) error {
	if ck == nil {
		return fmt.Errorf("%w: nil cloud key", ErrHandshake)
	}
	hash, err := wire.KeyHash(ck)
	if err != nil {
		return err
	}
	c.mu.Lock()
	if c.ck != nil {
		prev := c.keyHash
		c.mu.Unlock()
		if prev != hash {
			return fmt.Errorf("%w: coordinator already bound to a different key", ErrKeyMismatch)
		}
		return nil
	}
	c.ck = ck
	c.keyHash = hash
	parked := c.pending
	c.pending = nil
	c.mu.Unlock()
	for _, w := range parked {
		if err := c.finishJoin(w); err != nil {
			// Audited (see DESIGN.md §13): the parked conn failed its own
			// handshake; dropping it cannot hurt the coordinator.
			//lint:ignore discarded-error evicting a peer that failed its handshake
			w.conn.Close()
		}
	}
	return nil
}

// Addr returns the coordinator's listening address.
func (c *Coordinator) Addr() string { return c.ln.Addr().String() }

// greet wraps a fresh connection in a byte meter and validates its Hello.
func greet(conn net.Conn) (*workerConn, error) {
	m := wire.NewMeter(conn)
	w := &workerConn{conn: conn, meter: m, enc: gob.NewEncoder(m), dec: gob.NewDecoder(m)}
	var hello Message
	if err := w.dec.Decode(&hello); err != nil || hello.Hello == nil {
		return nil, fmt.Errorf("%w: bad hello from %s: %v", ErrHandshake, conn.RemoteAddr(), err)
	}
	if v := hello.Hello.Version; v != ProtoVersion {
		// Best-effort courtesy note; the typed error is the real signal.
		//lint:ignore discarded-error the peer is being rejected either way
		w.enc.Encode(Message{Error: fmt.Sprintf("protocol version %d, want %d", v, ProtoVersion)})
		return nil, fmt.Errorf("%w: worker %s speaks v%d, coordinator v%d", ErrVersionMismatch, conn.RemoteAddr(), v, ProtoVersion)
	}
	w.slots = hello.Hello.Slots
	if w.slots < 1 {
		w.slots = 1
	}
	return w, nil
}

// finishJoin completes a greeted worker's handshake: Welcome, then the key
// broadcast, then roster admission.
func (c *Coordinator) finishJoin(w *workerConn) error {
	c.mu.Lock()
	ck, hash := c.ck, c.keyHash
	c.mu.Unlock()
	if err := w.enc.Encode(Message{Welcome: &Welcome{Version: ProtoVersion, KeyHash: hash}}); err != nil {
		return fmt.Errorf("%w: welcome to %s: %v", ErrHandshake, w.conn.RemoteAddr(), err)
	}
	if err := w.enc.Encode(Message{Key: ck}); err != nil {
		return fmt.Errorf("%w: key broadcast to %s: %v", ErrHandshake, w.conn.RemoteAddr(), err)
	}
	c.mu.Lock()
	c.workers = append(c.workers, w)
	c.mu.Unlock()
	return nil
}

// AcceptWorkers blocks until n workers have joined (each already holding
// the broadcast key). It requires the key to be bound.
func (c *Coordinator) AcceptWorkers(n int) error {
	c.mu.Lock()
	keyed := c.ck != nil
	c.mu.Unlock()
	if !keyed {
		return fmt.Errorf("%w: AcceptWorkers before SetKey", ErrHandshake)
	}
	for c.WorkerCount() < n {
		conn, err := c.ln.Accept()
		if err != nil {
			return fmt.Errorf("cluster: accept: %w", err)
		}
		w, err := greet(conn)
		if err != nil {
			return errors.Join(err, conn.Close())
		}
		if err := c.finishJoin(w); err != nil {
			return errors.Join(err, conn.Close())
		}
	}
	return nil
}

// ServeJoins accepts workers in the background until the listener closes.
// Workers greeted before the key binds are parked; SetKey drains them. Use
// WaitWorkers to block until a quorum is live. Intended for the daemon,
// where joins and key binding race.
func (c *Coordinator) ServeJoins() {
	for {
		conn, err := c.ln.Accept()
		if err != nil {
			return // listener closed: Coordinator.Close
		}
		go func(conn net.Conn) {
			w, err := greet(conn)
			if err != nil {
				// Audited (see DESIGN.md §13): a peer that failed its hello
				// was never admitted; nothing to report to.
				//lint:ignore discarded-error evicting a peer that failed its handshake
				conn.Close()
				return
			}
			c.mu.Lock()
			if c.ck == nil {
				c.pending = append(c.pending, w)
				c.mu.Unlock()
				return
			}
			c.mu.Unlock()
			if err := c.finishJoin(w); err != nil {
				//lint:ignore discarded-error evicting a peer that failed its handshake
				conn.Close()
			}
		}(conn)
	}
}

// WaitWorkers blocks until at least n workers are on the roster or the
// context expires.
func (c *Coordinator) WaitWorkers(ctx context.Context, n int) error {
	tick := time.NewTicker(20 * time.Millisecond)
	defer tick.Stop()
	for {
		if c.WorkerCount() >= n {
			return nil
		}
		select {
		case <-ctx.Done():
			return fmt.Errorf("cluster: %d of %d workers joined: %w", c.WorkerCount(), n, ctx.Err())
		case <-tick.C:
		}
	}
}

// WorkerCount reports the live roster size.
func (c *Coordinator) WorkerCount() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.workers)
}

// Totals returns lifetime counters aggregated across runs.
func (c *Coordinator) Totals() Totals {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.totals
}

// dropWorker removes a dead worker from the roster and closes its
// connection; subsequent dispatch rounds no longer see it.
func (c *Coordinator) dropWorker(w *workerConn) {
	c.mu.Lock()
	for i, cur := range c.workers {
		if cur == w {
			c.workers = append(c.workers[:i], c.workers[i+1:]...)
			break
		}
	}
	c.mu.Unlock()
	// Audited (see DESIGN.md §13): dropWorker only runs after the
	// connection already failed, so Close can report nothing the caller
	// doesn't know; Coordinator.Close, by contrast, joins every error.
	//lint:ignore discarded-error evicting a dead worker; the close error carries no information
	w.conn.Close()
}

// Close shuts down the coordinator and asks workers to exit. Teardown
// continues past individual failures; every error is reported, joined.
func (c *Coordinator) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	var errs []error
	for _, w := range c.workers {
		if err := w.enc.Encode(Message{Bye: true}); err != nil {
			errs = append(errs, fmt.Errorf("cluster: bye to %s: %w", w.conn.RemoteAddr(), err))
		}
		if err := w.conn.Close(); err != nil {
			errs = append(errs, fmt.Errorf("cluster: close %s: %w", w.conn.RemoteAddr(), err))
		}
	}
	c.workers = nil
	for _, w := range c.pending {
		if err := w.conn.Close(); err != nil {
			errs = append(errs, fmt.Errorf("cluster: close parked %s: %w", w.conn.RemoteAddr(), err))
		}
	}
	c.pending = nil
	errs = append(errs, c.ln.Close())
	return errors.Join(errs...)
}

// Name identifies the backend in reports.
func (c *Coordinator) Name() string {
	return fmt.Sprintf("cluster(%d workers)", c.WorkerCount())
}

// meterSnap is a per-connection byte-counter snapshot taken at run start;
// the delta at run end (the meter keeps counting even after a drop) is the
// run's measured wire traffic. Workers that join mid-run have no snapshot
// and are skipped.
type meterSnap struct {
	m      *wire.Meter
	r0, w0 int64
}

func (c *Coordinator) snapMeters() []meterSnap {
	c.mu.Lock()
	defer c.mu.Unlock()
	snaps := make([]meterSnap, 0, len(c.workers))
	for _, w := range c.workers {
		snaps = append(snaps, meterSnap{w.meter, w.meter.BytesRead(), w.meter.BytesWritten()})
	}
	return snaps
}

func settleMeters(snaps []meterSnap, st *Stats) {
	for _, s := range snaps {
		st.WireBytesRecv += s.m.BytesRead() - s.r0
		st.WireBytesSent += s.m.BytesWritten() - s.w0
	}
}

// Run executes the netlist over the connected workers using the wavefront
// schedule. It implements the backend.Backend contract.
func (c *Coordinator) Run(nl *circuit.Netlist, inputs []*lwe.Sample) ([]*lwe.Sample, error) {
	if c.ck == nil {
		return nil, fmt.Errorf("%w: run before SetKey", ErrHandshake)
	}
	// Inputs are validated before the worker-count check so callers get the
	// typed exec errors (nil input, bad dimension) even on an empty cluster.
	st, err := exec.NewState(nl, inputs, c.ck.Params.LWEDimension)
	if err != nil {
		return nil, err
	}
	c.mu.Lock()
	workers := append([]*workerConn(nil), c.workers...)
	c.mu.Unlock()
	if len(workers) == 0 {
		return nil, fmt.Errorf("cluster: no workers connected")
	}
	start := time.Now()
	snaps := c.snapMeters()

	totalSlots := 0
	for _, w := range workers {
		totalSlots += w.slots
	}
	values := st.Values

	stats := Stats{Workers: len(workers), Slots: totalSlots, Gates: len(nl.Gates)}
	for _, g := range nl.Gates {
		if g.NeedsBootstrap() {
			stats.Bootstraps++
		}
	}
	ctBytes := int64(c.ck.Params.CiphertextBytes())
	jobTimeout := c.JobTimeout
	if jobTimeout <= 0 {
		jobTimeout = DefaultJobTimeout
	}
	levels := nl.Levels()
	stats.Levels = len(levels)
	seq := 0
	for _, level := range levels {
		// Dispatch the level, requeueing any lost worker's batch onto the
		// survivors until every gate of the wavefront has a result. The
		// run only fails once no workers remain (or a worker reports an
		// application error, which no retry would fix).
		remaining := level
		for len(remaining) > 0 {
			c.mu.Lock()
			workers = append(workers[:0:0], c.workers...)
			c.mu.Unlock()
			if len(workers) == 0 {
				return nil, fmt.Errorf("cluster: no workers left for level batch of %d gates: %w", len(remaining), ErrWorkerLost)
			}
			// Partition the batch across live workers proportionally to
			// their slot counts.
			parts := partition(remaining, workers)
			type reply struct {
				w    *workerConn
				res  *JobResult
				err  error
				lost bool
				part []int
			}
			ch := make(chan reply, len(workers))
			launched := 0
			for wi, part := range parts {
				if len(part) == 0 {
					continue
				}
				launched++
				tasks := make([]GateTask, len(part))
				for ti, gi := range part {
					g := nl.Gates[gi]
					task := GateTask{Kind: uint8(g.Kind), A: values[g.A], B: values[g.B]}
					if g.IsLUT() {
						task.TT = uint8(g.TT)
						task.Arity = g.Arity
						if g.Arity >= 3 {
							task.C = values[g.C]
						}
					}
					tasks[ti] = task
					ops := int64(g.NumOperands())
					stats.BytesSent += (1 + ops) * ctBytes
					stats.SamplesSent += ops
				}
				go func(w *workerConn, wi, seq int, tasks []GateTask, part []int) {
					if err := w.enc.Encode(Message{Job: &Job{Seq: seq, Tasks: tasks}}); err != nil {
						ch <- reply{w: w, lost: true, part: part,
							err: fmt.Errorf("cluster: send to worker %d: %w", wi, err)}
						return
					}
					// The per-job read deadline turns a hung or silently
					// dead worker into a detectable loss instead of a
					// coordinator that blocks forever. A connection that
					// cannot take a deadline is already broken: same loss.
					if err := w.conn.SetReadDeadline(time.Now().Add(jobTimeout)); err != nil {
						ch <- reply{w: w, lost: true, part: part,
							err: fmt.Errorf("cluster: worker %d deadline: %w", wi, err)}
						return
					}
					var msg Message
					err := w.dec.Decode(&msg)
					if cerr := w.conn.SetReadDeadline(time.Time{}); err == nil && cerr != nil {
						err = fmt.Errorf("cluster: worker %d clear deadline: %w", wi, cerr)
					}
					if err != nil {
						ch <- reply{w: w, lost: true, part: part,
							err: fmt.Errorf("cluster: receive from worker %d: %w", wi, err)}
						return
					}
					if msg.Error != "" {
						ch <- reply{w: w, err: fmt.Errorf("cluster: worker %d: %s", wi, msg.Error)}
						return
					}
					if msg.Result == nil || len(msg.Result.Outputs) != len(tasks) {
						ch <- reply{w: w, lost: true, part: part,
							err: fmt.Errorf("cluster: worker %d returned malformed result", wi)}
						return
					}
					ch <- reply{w: w, res: msg.Result, part: part}
				}(workers[wi], wi, seq, tasks, part)
			}
			seq++
			var retry []int
			var appErr error
			for i := 0; i < launched; i++ {
				r := <-ch
				switch {
				case r.lost:
					c.dropWorker(r.w)
					stats.WorkersLost++
					retry = append(retry, r.part...)
				case r.err != nil:
					appErr = r.err
				default:
					stats.SamplesReceived += int64(len(r.res.Outputs))
					for ti, gi := range r.part {
						values[nl.GateID(gi)] = r.res.Outputs[ti]
					}
				}
			}
			if appErr != nil {
				return nil, appErr
			}
			remaining = retry
		}
		// The wavefront is complete: drop drained operands so coordinator
		// memory follows the live frontier. The ciphertexts came from remote
		// workers, so there is no local free list to return them to.
		for _, gi := range level {
			g := &nl.Gates[gi]
			for k := 0; k < g.NumOperands(); k++ {
				st.Release(g.Operand(k), nil)
			}
		}
	}

	outs, err := st.Collect(c.ck.Params.LWEDimension)
	if err != nil {
		return nil, err
	}
	stats.Elapsed = time.Since(start)
	settleMeters(snaps, &stats)
	c.mu.Lock()
	c.LastStat = stats
	c.totals.GateRuns++
	c.totals.WireBytesSent += stats.WireBytesSent
	c.totals.WireBytesRecv += stats.WireBytesRecv
	c.totals.WorkersLost += int64(stats.WorkersLost)
	c.mu.Unlock()
	return outs, nil
}

// partition splits a level's gate indices across workers in proportion to
// slots.
func partition(level []int, workers []*workerConn) [][]int {
	total := 0
	for _, w := range workers {
		total += w.slots
	}
	parts := make([][]int, len(workers))
	off := 0
	for wi, w := range workers {
		share := len(level) * w.slots / total
		if wi == len(workers)-1 {
			share = len(level) - off
		}
		parts[wi] = level[off : off+share]
		off += share
	}
	return parts
}

// Worker joins a coordinator and serves gate jobs and shard steps until
// the connection closes or a Bye message arrives.
type Worker struct {
	slots int
	// DialTimeout bounds the dial-retry loop: the worker keeps redialing
	// with capped exponential backoff until the budget runs out, then
	// fails with ErrDial. Zero means DefaultDialTimeout.
	DialTimeout time.Duration
	// ShardCache caps the cross-run shard cache (least recently
	// initialized shard evicted first). Zero means DefaultShardCache.
	ShardCache int
}

// DefaultShardCache is the worker's shard-cache capacity when
// Worker.ShardCache is left zero.
const DefaultShardCache = 8

// NewWorker returns a worker that will evaluate jobs on `slots` parallel
// engines.
func NewWorker(slots int) *Worker {
	if slots < 1 {
		slots = 1
	}
	return &Worker{slots: slots}
}

// dial connects to the coordinator, retrying with capped exponential
// backoff (50 ms doubling to 2 s) so a worker started moments before its
// coordinator — the common orchestration race — joins instead of dying.
func (w *Worker) dial(addr string) (net.Conn, error) {
	budget := w.DialTimeout
	if budget <= 0 {
		budget = DefaultDialTimeout
	}
	deadline := time.Now().Add(budget)
	backoff := 50 * time.Millisecond
	for {
		conn, err := net.Dial("tcp", addr)
		if err == nil {
			return conn, nil
		}
		if time.Now().Add(backoff).After(deadline) {
			return nil, fmt.Errorf("%w: %s after %s: %v", ErrDial, addr, budget, err)
		}
		time.Sleep(backoff)
		backoff *= 2
		if backoff > 2*time.Second {
			backoff = 2 * time.Second
		}
	}
}

// handshake runs the worker side of the v2 join: Hello out, Welcome and
// key in, with version and key-hash checks surfaced as typed errors.
func (w *Worker) handshake(enc *gob.Encoder, dec *gob.Decoder) (*boot.CloudKey, error) {
	if err := enc.Encode(Message{Hello: &Hello{Slots: w.slots, Version: ProtoVersion}}); err != nil {
		return nil, fmt.Errorf("%w: hello: %v", ErrHandshake, err)
	}
	var wel Message
	if err := dec.Decode(&wel); err != nil {
		return nil, fmt.Errorf("%w: no welcome: %v", ErrHandshake, err)
	}
	if wel.Error != "" {
		// A v1 coordinator never sends Welcome; a v2 one rejects a version
		// skew with an Error note before closing.
		return nil, fmt.Errorf("%w: coordinator: %s", ErrVersionMismatch, wel.Error)
	}
	if wel.Welcome == nil {
		return nil, fmt.Errorf("%w: expected welcome, got %+v", ErrHandshake, wel)
	}
	if wel.Welcome.Version != ProtoVersion {
		return nil, fmt.Errorf("%w: coordinator v%d, worker v%d", ErrVersionMismatch, wel.Welcome.Version, ProtoVersion)
	}
	var keyMsg Message
	if err := dec.Decode(&keyMsg); err != nil || keyMsg.Key == nil {
		return nil, fmt.Errorf("%w: expected key broadcast (%v)", ErrHandshake, err)
	}
	hash, err := wire.KeyHash(keyMsg.Key)
	if err != nil {
		return nil, err
	}
	if wel.Welcome.KeyHash != "" && hash != wel.Welcome.KeyHash {
		return nil, fmt.Errorf("%w: received key %.16s…, coordinator advertised %.16s…", ErrKeyMismatch, hash, wel.Welcome.KeyHash)
	}
	return keyMsg.Key, nil
}

// Serve dials the coordinator and processes jobs until shutdown. It blocks.
func (w *Worker) Serve(addr string) error {
	conn, err := w.dial(addr)
	if err != nil {
		return err
	}
	defer conn.Close()
	enc := gob.NewEncoder(conn)
	dec := gob.NewDecoder(conn)
	ck, err := w.handshake(enc, dec)
	if err != nil {
		return err
	}
	engines := make([]*gate.Engine, w.slots)
	for i := range engines {
		engines[i] = gate.NewEngine(ck)
	}
	shards := newShardCache(w.ShardCache)
	dim := ck.Params.LWEDimension

	for {
		var msg Message
		if err := dec.Decode(&msg); err != nil {
			return nil // connection closed: normal shutdown
		}
		var reply Message
		switch {
		case msg.Bye:
			return nil
		case msg.Job != nil:
			outs, err := w.evalJob(engines, ck, msg.Job)
			if err != nil {
				reply = Message{Error: err.Error()}
			} else {
				reply = Message{Result: &JobResult{Seq: msg.Job.Seq, Outputs: outs}}
			}
		case msg.ShardInit != nil:
			reply = w.handleShardInit(shards, msg.ShardInit)
		case msg.ShardData != nil:
			reply = w.handleShardData(shards, msg.ShardData, dim)
		case msg.Step != nil:
			reply = w.handleStep(shards, engines, msg.Step)
		case msg.Replay != nil:
			reply = w.handleReplay(shards, engines, msg.Replay)
		default:
			reply = Message{Error: "unexpected message"}
		}
		if err := enc.Encode(reply); err != nil {
			return err
		}
	}
}

func (w *Worker) evalJob(engines []*gate.Engine, ck *boot.CloudKey, job *Job) ([]*lwe.Sample, error) {
	outs := make([]*lwe.Sample, len(job.Tasks))
	dim := ck.Params.LWEDimension
	var firstErr error
	var mu sync.Mutex
	var wg sync.WaitGroup
	chunk := (len(job.Tasks) + len(engines) - 1) / len(engines)
	for s := 0; s < len(engines) && s*chunk < len(job.Tasks); s++ {
		lo, hi := s*chunk, (s+1)*chunk
		if hi > len(job.Tasks) {
			hi = len(job.Tasks)
		}
		wg.Add(1)
		go func(eng *gate.Engine, lo, hi int) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				t := job.Tasks[i]
				out := lwe.NewSample(dim)
				var err error
				if t.Arity != 0 {
					ins := [3]*lwe.Sample{t.A, t.B, t.C}
					err = eng.LUT(int(t.Arity), logic.TT(t.TT), out, ins[:t.Arity]...)
				} else {
					err = eng.Binary(logic.Kind(t.Kind), out, t.A, t.B)
				}
				if err != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					mu.Unlock()
					return
				}
				outs[i] = out
			}
		}(engines[s], lo, hi)
	}
	wg.Wait()
	return outs, firstErr
}
