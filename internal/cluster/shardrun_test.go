package cluster

import (
	"context"
	"encoding/gob"
	"errors"
	"net"
	"testing"
	"time"

	"pytfhe/internal/backend"
)

func TestShardedAdderAndCacheHit(t *testing.T) {
	sk, ck := keys(t)
	coord := startCluster(t, ck, 2, 2)
	nl := adder4()
	for run, tc := range [][2]uint64{{5, 9}, {15, 15}} {
		in := append(bitsOf(tc[0], 4), bitsOf(tc[1], 4)...)
		outs, err := coord.RunSharded(nl, backend.EncryptInputs(sk, in))
		if err != nil {
			t.Fatal(err)
		}
		got := uintOf(backend.DecryptOutputs(sk, outs))
		if got != tc[0]+tc[1] {
			t.Fatalf("sharded %d+%d = %d", tc[0], tc[1], got)
		}
		st := coord.LastStat
		if run == 0 {
			// First run ships every shard: all misses.
			if st.ShardMisses == 0 || st.ShardHits != 0 {
				t.Fatalf("first run: hits=%d misses=%d, want 0/>0", st.ShardHits, st.ShardMisses)
			}
			if st.ShardBytesShipped == 0 {
				t.Fatalf("first run shipped no shard bytes: %+v", st)
			}
		} else {
			// Second run must find every shard resident.
			if st.ShardMisses != 0 || st.ShardHits == 0 {
				t.Fatalf("second run: hits=%d misses=%d, want >0/0", st.ShardHits, st.ShardMisses)
			}
			if st.ShardBytesShipped != 0 {
				t.Fatalf("second run reshipped %d bytes", st.ShardBytesShipped)
			}
		}
		if st.SamplesSent == 0 || st.SamplesReceived == 0 || st.BoundaryBytes == 0 {
			t.Fatalf("boundary traffic not accounted: %+v", st)
		}
		if st.WireBytesSent == 0 || st.WireBytesRecv == 0 {
			t.Fatalf("measured wire counters empty: %+v", st)
		}
	}
	tot := coord.Totals()
	if tot.ShardRuns != 2 || tot.ShardMisses == 0 || tot.ShardHits == 0 {
		t.Fatalf("totals = %+v", tot)
	}
}

func TestShardedMatchesGateDispatch(t *testing.T) {
	sk, ck := keys(t)
	coord := startCluster(t, ck, 3, 1)
	nl := adder4()
	in := append(bitsOf(11, 4), bitsOf(6, 4)...)
	gateOuts, err := coord.Run(nl, backend.EncryptInputs(sk, in))
	if err != nil {
		t.Fatal(err)
	}
	shardOuts, err := coord.RunSharded(nl, backend.EncryptInputs(sk, in))
	if err != nil {
		t.Fatal(err)
	}
	want := backend.DecryptOutputs(sk, gateOuts)
	got := backend.DecryptOutputs(sk, shardOuts)
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("output %d: gate dispatch %v, sharded %v", i, want[i], got[i])
		}
	}
}

// TestShardedWireBelowGateDispatch is the point of the subsystem: per-run
// boundary traffic must undercut the gate path's per-operand shipping.
func TestShardedWireBelowGateDispatch(t *testing.T) {
	sk, ck := keys(t)
	coord := startCluster(t, ck, 2, 2)
	nl := adder4()
	in := backend.EncryptInputs(sk, bitsOf(0x5a, 8))
	if _, err := coord.Run(nl, in); err != nil {
		t.Fatal(err)
	}
	gateBytes := coord.LastStat.BytesSent
	// Warm the shard cache, then measure a steady-state run.
	if _, err := coord.RunSharded(nl, in); err != nil {
		t.Fatal(err)
	}
	if _, err := coord.RunSharded(nl, in); err != nil {
		t.Fatal(err)
	}
	shardBytes := coord.LastStat.BoundaryBytes
	if shardBytes >= gateBytes {
		t.Fatalf("sharded boundary traffic %d B did not undercut gate dispatch %d B", shardBytes, gateBytes)
	}
}

// shardWorkerDiesOnFirstStep joins as a protocol-correct worker, accepts
// its shard, then drops the connection the moment real work arrives.
func shardWorkerDiesOnFirstStep(t *testing.T, addr string) <-chan struct{} {
	t.Helper()
	done := make(chan struct{})
	go func() {
		defer close(done)
		conn, err := net.Dial("tcp", addr)
		if err != nil {
			return
		}
		enc := gob.NewEncoder(conn)
		dec := gob.NewDecoder(conn)
		if err := enc.Encode(Message{Hello: &Hello{Slots: 1, Version: ProtoVersion}}); err != nil {
			return
		}
		var welcome, key Message
		if err := dec.Decode(&welcome); err != nil {
			return
		}
		if err := dec.Decode(&key); err != nil {
			return
		}
		for {
			var msg Message
			if err := dec.Decode(&msg); err != nil {
				return
			}
			switch {
			case msg.ShardInit != nil:
				if err := enc.Encode(Message{ShardReady: &ShardReady{Hash: msg.ShardInit.Hash, Cached: false}}); err != nil {
					return
				}
			case msg.ShardData != nil:
				if err := enc.Encode(Message{ShardReady: &ShardReady{Hash: msg.ShardData.Hash, Cached: true}}); err != nil {
					return
				}
			case msg.Step != nil:
				conn.Close()
				return
			case msg.Bye:
				return
			}
		}
	}()
	return done
}

// TestShardedWorkerLostRecovers kills one of two workers at its first step
// and checks the survivor absorbs the lost shard (reship + replay) and the
// run still produces the right sum.
func TestShardedWorkerLostRecovers(t *testing.T) {
	sk, ck := keys(t)
	coord, err := NewCoordinator(ck, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { coord.Close() })
	coord.JobTimeout = 10 * time.Second

	go func() { _ = NewWorker(1).Serve(coord.Addr()) }()
	dead := shardWorkerDiesOnFirstStep(t, coord.Addr())
	if err := coord.AcceptWorkers(2); err != nil {
		t.Fatal(err)
	}

	nl := adder4()
	in := append(bitsOf(9, 4), bitsOf(6, 4)...)
	outs, err := coord.RunSharded(nl, backend.EncryptInputs(sk, in))
	if err != nil {
		t.Fatalf("sharded run with one dying worker: %v", err)
	}
	if got := uintOf(backend.DecryptOutputs(sk, outs)); got != 15 {
		t.Fatalf("9+6 = %d after shard recovery", got)
	}
	<-dead
	st := coord.LastStat
	if st.WorkersLost != 1 {
		t.Fatalf("stats.WorkersLost = %d, want 1", st.WorkersLost)
	}
	if coord.Totals().ShardReships == 0 && st.ShardMisses < 3 {
		// The orphaned shard must have been re-installed on the survivor:
		// either as a tracked reship (post-level-0 loss) or as an extra miss.
		t.Fatalf("no reship recorded: %+v", st)
	}
}

// TestPendingCoordinatorBindsLate exercises the daemon flow: workers join
// a keyless coordinator, park, and complete their handshake when the key
// arrives with the first session.
func TestPendingCoordinatorBindsLate(t *testing.T) {
	sk, ck := keys(t)
	coord, err := NewPendingCoordinator("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { coord.Close() })
	go coord.ServeJoins()
	for i := 0; i < 2; i++ {
		go func() { _ = NewWorker(1).Serve(coord.Addr()) }()
	}
	// Give the workers a moment to park before the key binds, so the
	// drain path (not just the live-join path) is exercised.
	time.Sleep(100 * time.Millisecond)
	if coord.WorkerCount() != 0 {
		t.Fatalf("%d workers admitted before SetKey", coord.WorkerCount())
	}
	if err := coord.SetKey(ck); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := coord.WaitWorkers(ctx, 2); err != nil {
		t.Fatal(err)
	}
	nl := adder4()
	in := append(bitsOf(3, 4), bitsOf(4, 4)...)
	outs, err := coord.RunSharded(nl, backend.EncryptInputs(sk, in))
	if err != nil {
		t.Fatal(err)
	}
	if got := uintOf(backend.DecryptOutputs(sk, outs)); got != 7 {
		t.Fatalf("3+4 = %d via late-bound coordinator", got)
	}
	// Rebinding the same key is a no-op; a different key is refused.
	if err := coord.SetKey(ck); err != nil {
		t.Fatalf("same-key rebind: %v", err)
	}
}

func TestVersionMismatchRejectedByCoordinator(t *testing.T) {
	_, ck := keys(t)
	coord, err := NewCoordinator(ck, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { coord.Close() })
	go func() {
		conn, err := net.Dial("tcp", coord.Addr())
		if err != nil {
			return
		}
		defer conn.Close()
		enc := gob.NewEncoder(conn)
		if err := enc.Encode(Message{Hello: &Hello{Slots: 1, Version: 1}}); err != nil {
			return
		}
		var rej Message
		_ = gob.NewDecoder(conn).Decode(&rej)
	}()
	if err := coord.AcceptWorkers(1); !errors.Is(err, ErrVersionMismatch) {
		t.Fatalf("err = %v, want ErrVersionMismatch", err)
	}
}

// fakeCoordinator accepts one worker and plays a scripted handshake.
func fakeCoordinator(t *testing.T, script func(enc *gob.Encoder, dec *gob.Decoder)) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		enc := gob.NewEncoder(conn)
		dec := gob.NewDecoder(conn)
		var hello Message
		if err := dec.Decode(&hello); err != nil {
			return
		}
		script(enc, dec)
	}()
	return ln.Addr().String()
}

func TestVersionMismatchRejectedByWorker(t *testing.T) {
	addr := fakeCoordinator(t, func(enc *gob.Encoder, dec *gob.Decoder) {
		_ = enc.Encode(Message{Welcome: &Welcome{Version: 99}})
	})
	if err := NewWorker(1).Serve(addr); !errors.Is(err, ErrVersionMismatch) {
		t.Fatalf("err = %v, want ErrVersionMismatch", err)
	}
}

func TestKeyMismatchRejectedByWorker(t *testing.T) {
	_, ck := keys(t)
	addr := fakeCoordinator(t, func(enc *gob.Encoder, dec *gob.Decoder) {
		_ = enc.Encode(Message{Welcome: &Welcome{Version: ProtoVersion, KeyHash: "not-the-key"}})
		_ = enc.Encode(Message{Key: ck})
	})
	if err := NewWorker(1).Serve(addr); !errors.Is(err, ErrKeyMismatch) {
		t.Fatalf("err = %v, want ErrKeyMismatch", err)
	}
}

func TestDialRetryExhaustsBudget(t *testing.T) {
	// Reserve a port and close it again: nobody listens there.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	if err := ln.Close(); err != nil {
		t.Fatal(err)
	}
	w := NewWorker(1)
	w.DialTimeout = 300 * time.Millisecond
	start := time.Now()
	err = w.Serve(addr)
	if !errors.Is(err, ErrDial) {
		t.Fatalf("err = %v, want ErrDial", err)
	}
	if elapsed := time.Since(start); elapsed < 50*time.Millisecond {
		t.Fatalf("gave up after %s without retrying", elapsed)
	}
}

// TestPartitionEdgeCases pins the slot-proportional splitter on the shapes
// the scheduler actually produces: more workers than gates, a single
// surviving worker, an empty level.
func TestPartitionEdgeCases(t *testing.T) {
	cover := func(t *testing.T, level []int, parts [][]int) {
		t.Helper()
		seen := map[int]bool{}
		for _, p := range parts {
			for _, g := range p {
				if seen[g] {
					t.Fatalf("gate %d assigned twice: %v", g, parts)
				}
				seen[g] = true
			}
		}
		if len(seen) != len(level) {
			t.Fatalf("covered %d of %d gates: %v", len(seen), len(level), parts)
		}
	}
	t.Run("more workers than gates", func(t *testing.T) {
		workers := []*workerConn{{slots: 1}, {slots: 1}, {slots: 1}}
		level := []int{7, 9}
		parts := partition(level, workers)
		if len(parts) != 3 {
			t.Fatalf("%d parts for 3 workers", len(parts))
		}
		cover(t, level, parts)
	})
	t.Run("single worker", func(t *testing.T) {
		workers := []*workerConn{{slots: 2}}
		level := []int{0, 1, 2, 3, 4}
		parts := partition(level, workers)
		cover(t, level, parts)
		if len(parts[0]) != len(level) {
			t.Fatalf("single worker got %d of %d gates", len(parts[0]), len(level))
		}
	})
	t.Run("empty level", func(t *testing.T) {
		workers := []*workerConn{{slots: 1}, {slots: 3}}
		parts := partition(nil, workers)
		cover(t, nil, parts)
		for _, p := range parts {
			if len(p) != 0 {
				t.Fatalf("empty level produced work: %v", parts)
			}
		}
	})
}
