// Package trand provides the random samplers used by the TFHE scheme:
// uniform bits for secret keys, uniform torus elements for ciphertext masks,
// and Gaussian-distributed torus noise.
//
// The generator is a deterministic SHA-256-based DRBG. Seeded from
// crypto/rand it is suitable for the semi-honest threat model of the paper;
// seeded from an explicit value it makes every test and benchmark
// reproducible. Only the Go standard library is used.
package trand

import (
	"crypto/rand"
	"crypto/sha256"
	"encoding/binary"
	"math"
)

// Source is a deterministic cryptographically-seeded random generator.
// It is not safe for concurrent use; give each goroutine its own Source
// (see Fork).
type Source struct {
	key     [32]byte
	counter uint64
	buf     [32]byte
	off     int

	// cached spare Gaussian variate from the Box-Muller transform
	haveSpare bool
	spare     float64
}

// New returns a Source seeded from the operating system's entropy pool.
func New() *Source {
	var seed [32]byte
	if _, err := rand.Read(seed[:]); err != nil {
		// crypto/rand never fails on supported platforms; if it does,
		// there is no meaningful recovery for a cryptographic library.
		panic("trand: crypto/rand failed: " + err.Error())
	}
	return NewSeeded(seed[:])
}

// NewSeeded returns a deterministic Source derived from seed. Two Sources
// constructed from the same seed produce identical streams.
func NewSeeded(seed []byte) *Source {
	s := &Source{}
	s.key = sha256.Sum256(seed)
	s.off = len(s.buf) // force refill on first use
	return s
}

// Fork derives an independent child Source. The child's stream is
// deterministic given the parent's state, and advancing the child does not
// affect the parent.
func (s *Source) Fork() *Source {
	var material [40]byte
	copy(material[:32], s.key[:])
	binary.LittleEndian.PutUint64(material[32:], s.counter)
	s.counter++
	child := &Source{}
	child.key = sha256.Sum256(material[:])
	child.off = len(child.buf)
	return child
}

func (s *Source) refill() {
	var block [40]byte
	copy(block[:32], s.key[:])
	binary.LittleEndian.PutUint64(block[32:], s.counter)
	s.counter++
	s.buf = sha256.Sum256(block[:])
	s.off = 0
}

// Uint32 returns a uniformly random 32-bit value.
func (s *Source) Uint32() uint32 {
	if s.off+4 > len(s.buf) {
		s.refill()
	}
	v := binary.LittleEndian.Uint32(s.buf[s.off:])
	s.off += 4
	return v
}

// Uint64 returns a uniformly random 64-bit value.
func (s *Source) Uint64() uint64 {
	if s.off+8 > len(s.buf) {
		s.refill()
	}
	v := binary.LittleEndian.Uint64(s.buf[s.off:])
	s.off += 8
	return v
}

// Bit returns a uniformly random bit as an int32 in {0, 1}.
func (s *Source) Bit() int32 {
	return int32(s.Uint32() & 1)
}

// Float64 returns a uniform value in [0, 1).
func (s *Source) Float64() float64 {
	return float64(s.Uint64()>>11) / (1 << 53)
}

// Torus32 returns a uniformly random torus element (a uniform uint32).
func (s *Source) Torus32() uint32 {
	return s.Uint32()
}

// Normal returns a standard normal variate via the Box-Muller transform.
func (s *Source) Normal() float64 {
	if s.haveSpare {
		s.haveSpare = false
		return s.spare
	}
	var u float64
	for u == 0 {
		u = s.Float64()
	}
	v := s.Float64()
	r := math.Sqrt(-2 * math.Log(u))
	theta := 2 * math.Pi * v
	s.spare = r * math.Sin(theta)
	s.haveSpare = true
	return r * math.Cos(theta)
}

// GaussianTorus32 returns mu plus Gaussian noise of standard deviation
// sigma, where sigma is expressed as a real number in [0, 1) interpreted on
// the torus. The real-valued noise is rounded to the nearest representable
// torus element.
func (s *Source) GaussianTorus32(mu uint32, sigma float64) uint32 {
	noise := s.Normal() * sigma
	return mu + DoubleToTorus32(noise)
}

// DoubleToTorus32 maps a real number to its nearest torus representative:
// the fractional part of d scaled by 2^32. The mapping wraps modulo 1.
func DoubleToTorus32(d float64) uint32 {
	frac := d - math.Floor(d) // in [0,1)
	return uint32(uint64(math.Round(frac * (1 << 32))))
}

// Torus32ToDouble maps a torus element to its real representative in
// [-1/2, 1/2).
func Torus32ToDouble(t uint32) float64 {
	return float64(int32(t)) / (1 << 32)
}
