package trand

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a := NewSeeded([]byte("seed"))
	b := NewSeeded([]byte("seed"))
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed produced different streams")
		}
	}
	c := NewSeeded([]byte("other"))
	same := true
	a = NewSeeded([]byte("seed"))
	for i := 0; i < 8; i++ {
		if a.Uint64() != c.Uint64() {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical streams")
	}
}

func TestForkIndependence(t *testing.T) {
	parent := NewSeeded([]byte("fork"))
	child1 := parent.Fork()
	child2 := parent.Fork()
	if child1.Uint64() == child2.Uint64() {
		t.Fatal("sibling forks produced the same first value")
	}
	// Forking twice from identically-seeded parents is reproducible.
	p2 := NewSeeded([]byte("fork"))
	c1 := p2.Fork()
	c1b := NewSeeded([]byte("fork")).Fork()
	if c1.Uint64() != c1b.Uint64() {
		t.Fatal("fork is not deterministic")
	}
}

func TestFloat64Range(t *testing.T) {
	s := NewSeeded([]byte("f64"))
	for i := 0; i < 10000; i++ {
		v := s.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of range: %g", v)
		}
	}
}

func TestBitBalance(t *testing.T) {
	s := NewSeeded([]byte("bits"))
	ones := 0
	const n = 20000
	for i := 0; i < n; i++ {
		ones += int(s.Bit())
	}
	if ones < n/2-500 || ones > n/2+500 {
		t.Fatalf("bit bias: %d ones of %d", ones, n)
	}
}

func TestNormalMoments(t *testing.T) {
	s := NewSeeded([]byte("normal"))
	const n = 50000
	var sum, sum2 float64
	for i := 0; i < n; i++ {
		v := s.Normal()
		sum += v
		sum2 += v * v
	}
	mean := sum / n
	variance := sum2/n - mean*mean
	if math.Abs(mean) > 0.03 {
		t.Fatalf("normal mean %g", mean)
	}
	if math.Abs(variance-1) > 0.05 {
		t.Fatalf("normal variance %g", variance)
	}
}

func TestGaussianTorusCentered(t *testing.T) {
	s := NewSeeded([]byte("gauss"))
	const mu = uint32(1) << 29
	const sigma = 1.0 / (1 << 12)
	const n = 20000
	var acc float64
	for i := 0; i < n; i++ {
		v := s.GaussianTorus32(mu, sigma)
		acc += Torus32ToDouble(v - mu)
	}
	if math.Abs(acc/n) > sigma/10 {
		t.Fatalf("gaussian noise not centered: %g", acc/n)
	}
}

func TestDoubleTorusRoundTrip(t *testing.T) {
	f := func(d float64) bool {
		if math.IsNaN(d) || math.IsInf(d, 0) || math.Abs(d) > 1e6 {
			return true
		}
		tt := DoubleToTorus32(d)
		back := Torus32ToDouble(tt)
		// back is within 2^-32 of d mod 1, mapped to [-1/2, 1/2).
		diff := math.Mod(d-back, 1)
		if diff > 0.5 {
			diff -= 1
		}
		if diff < -0.5 {
			diff += 1
		}
		return math.Abs(diff) < 1.0/(1<<31)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestUniformTorusCoversRange(t *testing.T) {
	s := NewSeeded([]byte("uniform"))
	var lo, hi uint32 = math.MaxUint32, 0
	for i := 0; i < 10000; i++ {
		v := s.Torus32()
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	if lo > 1<<28 || hi < math.MaxUint32-1<<28 {
		t.Fatalf("uniform samples confined to [%d, %d]", lo, hi)
	}
}

func TestSystemSeededDiffers(t *testing.T) {
	if New().Uint64() == New().Uint64() {
		t.Fatal("two system-seeded sources produced the same value")
	}
}
