// Package noise provides the noise-growth analysis of the TFHE pipeline:
// closed-form variance predictions for each homomorphic operation and
// empirical measurement helpers used by tests to validate that the
// implementation's actual noise stays within the predicted budget — the
// property that makes unbounded-depth gate evaluation sound.
//
// Conventions: variances are in torus units (a standard deviation of
// 2^-15 has variance 2^-30). The decryption of a gate ciphertext is
// correct while the phase error stays below 1/16 (the half-width of the
// ±1/8 message slots), i.e. roughly while stdev < 1/48 for a 3-sigma
// margin.
package noise

import (
	"math"

	"pytfhe/internal/logic"
	"pytfhe/internal/params"
	"pytfhe/internal/tfhe/boot"
	"pytfhe/internal/tfhe/gate"
	"pytfhe/internal/tfhe/lwe"
	"pytfhe/internal/torus"
	"pytfhe/internal/trand"
)

// Budget summarizes the noise budget of a parameter set.
type Budget struct {
	// FreshVariance is the variance of a fresh gate-key encryption.
	FreshVariance float64
	// BootstrapVariance is the predicted variance of a ciphertext right
	// after gate bootstrapping (blind rotation + key switch).
	BootstrapVariance float64
	// GateInputVariance is the worst-case variance entering a gate's
	// bootstrap: the linear combination |ca|+|cb| <= 4 of two refreshed
	// ciphertexts (XOR uses coefficients of 2).
	GateInputVariance float64
	// DecryptionMargin is the slot half-width (1/16 for the ±1/8
	// encoding).
	DecryptionMargin float64
	// FailureSigmas is the number of standard deviations between the
	// worst-case gate-input noise and the decryption margin.
	FailureSigmas float64
}

// Analyze computes the noise budget of a parameter set.
func Analyze(p *params.GateParams) Budget {
	var b Budget
	b.FreshVariance = p.LWEStdev * p.LWEStdev
	b.BootstrapVariance = BootstrapVariance(p)
	// Worst gate plan is XOR: 2a + 2b -> 4x the refreshed variance, plus
	// nothing for the noiseless bias.
	b.GateInputVariance = 8 * b.BootstrapVariance // 2^2 + 2^2 coefficient mass
	b.DecryptionMargin = 1.0 / 16
	if b.GateInputVariance > 0 {
		b.FailureSigmas = b.DecryptionMargin / math.Sqrt(b.GateInputVariance)
	}
	return b
}

// BootstrapVariance predicts the output variance of one gate bootstrap
// under the standard TFHE analysis: the blind-rotation external products
// contribute n CMux noises, and the key switch adds its decomposition and
// rounding terms.
func BootstrapVariance(p *params.GateParams) float64 {
	n := float64(p.LWEDimension)
	N := float64(p.PolyDegree)
	k := float64(p.RingCount)
	l := float64(p.DecompLevels)
	bg := float64(int64(1) << p.DecompBaseLog)
	bkVar := p.TLWEStdev * p.TLWEStdev

	// Per-CMux: (k+1) * l * N * (Bg/2)^2 * Var(bk) from the decomposed
	// multiply, plus the gadget truncation term (1+kN) * eps^2 with
	// eps = 1/(2 Bg^l).
	eps := 1.0 / (2 * math.Pow(bg, l))
	cmux := (k+1)*l*N*(bg/2)*(bg/2)*bkVar + (1+k*N)*eps*eps
	blindRotate := n * cmux

	// Key switch: N*k digits, t levels each, with base 2^basebit; each
	// nonzero digit adds a fresh ks-sample noise, plus the rounding error
	// 2^-(2*(t*basebit)-2)/... (standard bound: NIn * 2^-2(prec+1) ).
	t := float64(p.KSLevels)
	ksVar := p.LWEStdev * p.LWEStdev
	prec := float64(p.KSLevels * p.KSBaseLog)
	keySwitch := N*k*t*ksVar + N*k*math.Pow(2, -2*prec)/12

	return blindRotate + keySwitch
}

// Measurement is an empirical noise observation.
type Measurement struct {
	Samples  int
	Mean     float64 // mean phase error (torus units)
	Variance float64
	MaxAbs   float64
}

// MeasureFreshEncryption empirically measures the noise of fresh gate
// encryptions under the secret key.
func MeasureFreshEncryption(sk *boot.SecretKey, samples int, seed []byte) Measurement {
	rng := trand.NewSeeded(seed)
	p := sk.Params
	var m Measurement
	ct := lwe.NewSample(p.LWEDimension)
	mu := torus.Torus32(1) << 29
	for i := 0; i < samples; i++ {
		lwe.Encrypt(ct, mu, p.LWEStdev, sk.LWE, rng)
		err := trand.Torus32ToDouble(lwe.Phase(ct, sk.LWE) - mu)
		m.accumulate(err)
	}
	m.finish(samples)
	return m
}

// MeasureBootstrapNoise empirically measures the phase error after gate
// bootstrapping: it evaluates NAND(true, false) repeatedly and compares
// the output phase against the ideal +1/8.
func MeasureBootstrapNoise(sk *boot.SecretKey, ck *boot.CloudKey, samples int, seed []byte) (Measurement, error) {
	rng := trand.NewSeeded(seed)
	p := sk.Params
	eng := gate.NewEngine(ck)
	a := lwe.NewSample(p.LWEDimension)
	b := lwe.NewSample(p.LWEDimension)
	out := lwe.NewSample(p.LWEDimension)
	mu := torus.Torus32(1) << 29
	var m Measurement
	for i := 0; i < samples; i++ {
		gate.Encrypt(a, true, sk, rng)
		gate.Encrypt(b, false, sk, rng)
		if err := eng.Binary(logic.NAND, out, a, b); err != nil {
			return m, err
		}
		// NAND(true,false) = true -> ideal phase +1/8.
		err := trand.Torus32ToDouble(lwe.Phase(out, sk.LWE) - mu)
		m.accumulate(err)
	}
	m.finish(samples)
	return m, nil
}

func (m *Measurement) accumulate(err float64) {
	m.Mean += err
	m.Variance += err * err
	if a := math.Abs(err); a > m.MaxAbs {
		m.MaxAbs = a
	}
}

func (m *Measurement) finish(samples int) {
	m.Samples = samples
	if samples == 0 {
		return
	}
	m.Mean /= float64(samples)
	m.Variance = m.Variance/float64(samples) - m.Mean*m.Mean
}
