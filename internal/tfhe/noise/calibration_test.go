package noise

import (
	"math"
	"testing"

	"pytfhe/internal/params"
	"pytfhe/internal/tfhe/boot"
	"pytfhe/internal/tfhe/gate"
	"pytfhe/internal/tfhe/lwe"
	"pytfhe/internal/torus"
	"pytfhe/internal/trand"
)

// TestCalibrationStaticModelBoundsMeasuredNoise pins the static netlist
// analysis to reality: it encrypts inputs, homomorphically evaluates the
// bench netlist shape (the ripple-imbalanced NAND chains of
// bench_test.go), and checks that the phase error measured on every
// output ciphertext stays inside the statically predicted worst-case
// bound. If internal/params or the bootstrap pipeline changes in a way
// the closed-form model no longer covers, this is the test that drifts.
func TestCalibrationStaticModelBoundsMeasuredNoise(t *testing.T) {
	if testing.Short() {
		t.Skip("homomorphic calibration run")
	}
	p := params.Test()
	rng := trand.NewSeeded([]byte("noise-calibration"))
	sk, ck, err := boot.GenerateKeys(p, rng)
	if err != nil {
		t.Fatal(err)
	}
	nl := nandChains([]int{30, 30, 30, 30, 30, 12, 6}) // bench netlist shape
	r, err := AnalyzeNetlist(nl, p, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !r.OK() {
		t.Fatalf("bench netlist over budget under test params: %v", r.Err())
	}

	eng := gate.NewEngine(ck)
	mu := torus.Torus32(1) << 29
	var m Measurement
	samples := 0
	for run := 0; run < 2; run++ {
		bits := make([]bool, nl.NumInputs)
		for i := range bits {
			bits[i] = (i+run)%2 == 0
		}
		want, err := nl.Evaluate(bits)
		if err != nil {
			t.Fatal(err)
		}
		values := make([]*lwe.Sample, nl.NumNodes()+1)
		for i := 0; i < nl.NumInputs; i++ {
			values[i+1] = lwe.NewSample(p.LWEDimension)
			gate.Encrypt(values[i+1], bits[i], sk, rng)
		}
		for i, g := range nl.Gates {
			out := lwe.NewSample(p.LWEDimension)
			if err := eng.Binary(g.Kind, out, values[g.A], values[g.B]); err != nil {
				t.Fatalf("gate %d: %v", i, err)
			}
			values[nl.GateID(i)] = out
		}
		for i, id := range nl.Outputs {
			if id.IsConst() {
				continue
			}
			ideal := mu
			if !want[i] {
				ideal = -mu
			}
			m.accumulate(trand.Torus32ToDouble(lwe.Phase(values[id], sk.LWE) - ideal))
			samples++
		}
	}
	m.finish(samples)

	// Every output here is a bootstrapped NAND, so the static model's
	// worst-case prediction for its variance is exactly the bootstrap
	// variance. The FFT-based external products add numerical noise the
	// closed form does not model, so the measured sample is held to the
	// same 4x implementation allowance TestBootstrapNoiseWithinBudget
	// pins; a parameter or pipeline change that drifts past it fails
	// here before it fails a decryption.
	const implAllowance = 4
	predicted := r.Budget.BootstrapVariance
	if m.Variance > implAllowance*predicted {
		t.Fatalf("measured output variance %.3g exceeds static worst-case prediction %.3g x%d (%d samples)",
			m.Variance, predicted, implAllowance, m.Samples)
	}
	if m.Variance < predicted/1e6 {
		t.Fatalf("measured variance %.3g implausibly far below prediction %.3g; measurement is broken",
			m.Variance, predicted)
	}
	// And no individual output may stray past the decryption margin the
	// sigma check reasons about.
	if m.MaxAbs >= 2*r.Budget.DecryptionMargin {
		t.Fatalf("phase error %.3g reached the output decryption margin", m.MaxAbs)
	}
	t.Logf("calibration: %d outputs, measured stdev %.3g vs predicted worst case %.3g (%.1fx headroom), max |err| %.3g",
		m.Samples, math.Sqrt(m.Variance), math.Sqrt(predicted), math.Sqrt(predicted/m.Variance), m.MaxAbs)
}
