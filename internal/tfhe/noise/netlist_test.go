package noise

import (
	"math"
	"testing"

	"pytfhe/internal/circuit"
	"pytfhe/internal/logic"
	"pytfhe/internal/params"
)

// nandChains builds the bench-shaped netlist: serial NAND chains of the
// given depths, each chained against a shared final input.
func nandChains(depths []int) *circuit.Netlist {
	b := circuit.NewBuilder("nand-chains", circuit.NoOptimizations())
	ins := b.Inputs("x", len(depths)+1)
	for c, depth := range depths {
		cur := ins[c]
		for d := 0; d < depth; d++ {
			cur = b.Gate(logic.NAND, cur, ins[len(depths)])
		}
		b.Output("o", cur)
	}
	return b.MustBuild()
}

// xorTree builds a small balanced XOR tree: XOR is the worst gate plan
// (coefficient-2 combination), so this exercises the tightest margin.
func xorTree(leaves int) *circuit.Netlist {
	b := circuit.NewBuilder("xor-tree", circuit.NoOptimizations())
	ids := b.Inputs("x", leaves)
	for len(ids) > 1 {
		var next []circuit.NodeID
		for i := 0; i+1 < len(ids); i += 2 {
			next = append(next, b.Xor(ids[i], ids[i+1]))
		}
		if len(ids)%2 == 1 {
			next = append(next, ids[len(ids)-1])
		}
		ids = next
	}
	b.Output("parity", ids[0])
	return b.MustBuild()
}

func TestAnalyzeNetlistBuiltinParamsAreClean(t *testing.T) {
	nl := nandChains([]int{30, 30, 30, 30, 30, 12, 6})
	xt := xorTree(16)
	for _, p := range []*params.GateParams{params.Default128(), params.Test()} {
		for _, n := range []*circuit.Netlist{nl, xt} {
			r, err := AnalyzeNetlist(n, p, 0)
			if err != nil {
				t.Fatalf("%s/%s: %v", n.Name, p.Name, err)
			}
			if !r.OK() || r.Err() != nil {
				t.Fatalf("%s/%s: over budget: %v", n.Name, p.Name, r.Err())
			}
			if r.HeadroomBits <= 0 {
				t.Fatalf("%s/%s: headroom %.2f bits, want > 0", n.Name, p.Name, r.HeadroomBits)
			}
			if r.MaxNoise.Sigmas < DefaultMinSigmas {
				t.Fatalf("%s/%s: worst gate at %.2f sigmas", n.Name, p.Name, r.MaxNoise.Sigmas)
			}
			t.Logf("%s/%s: %s", n.Name, p.Name, r)
		}
	}
}

func TestAnalyzeNetlistCountsAndDepth(t *testing.T) {
	nl := nandChains([]int{3, 1})
	r, err := AnalyzeNetlist(nl, params.Test(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if r.Bootstrapped != 4 || r.Gates != 4 {
		t.Fatalf("counted %d/%d bootstrapped/gates, want 4/4", r.Bootstrapped, r.Gates)
	}
	// The deepest chain has three chained NANDs; the worst gate is any
	// gate whose operand was already bootstrapped (depth 2 and beyond all
	// see the same 2x bootstrap variance).
	if r.CriticalDepth < 2 || r.MaxNoise.Depth != r.CriticalDepth {
		t.Fatalf("critical depth %d (max-noise depth %d), want >= 2", r.CriticalDepth, r.MaxNoise.Depth)
	}
	if r.WorstOutput < 0 {
		t.Fatal("no output was noise-checked")
	}
}

func TestAnalyzeNetlistFreeGatesDoNotAmplify(t *testing.T) {
	b := circuit.NewBuilder("free-chain", circuit.NoOptimizations())
	in := b.Input("x")
	cur := in
	for i := 0; i < 50; i++ {
		cur = b.Gate(logic.NOT, cur, cur)
	}
	b.Output("y", cur)
	nl := b.MustBuild()
	r, err := AnalyzeNetlist(nl, params.Test(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if r.Bootstrapped != 0 {
		t.Fatalf("NOT chain counted %d bootstraps", r.Bootstrapped)
	}
	// The output carries exactly the fresh input variance: 50 NOTs add
	// nothing, so its sigma margin is margin/freshStdev.
	fresh := params.Test().LWEStdev
	want := (2.0 / 16) / fresh
	if math.Abs(r.WorstOutputSigmas-want) > want*1e-9 {
		t.Fatalf("output sigmas %.6g, want %.6g (fresh variance passthrough)", r.WorstOutputSigmas, want)
	}
	if !r.OK() {
		t.Fatalf("free-gate chain over budget: %v", r.Err())
	}
}

func TestAnalyzeNetlistConstOnly(t *testing.T) {
	b := circuit.NewBuilder("consts", circuit.NoOptimizations())
	b.Output("t", b.Const(true))
	b.Output("f", b.Const(false))
	nl := b.MustBuild()
	r, err := AnalyzeNetlist(nl, params.Test(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if !r.OK() || r.WorstOutput != -1 || !math.IsInf(r.HeadroomBits, 1) {
		t.Fatalf("const-only netlist: ok=%v worst=%d headroom=%v", r.OK(), r.WorstOutput, r.HeadroomBits)
	}
}

// degradedParams returns a parameter set whose key-switch key is far too
// noisy: the bootstrap no longer resets noise below the decryption margin,
// so any gate reading a bootstrapped operand is over budget. This is the
// seeded defect the noise pass must catch (parameter regressions present
// exactly this way).
func degradedParams() *params.GateParams {
	p := params.Test()
	p.Name = "degraded"
	p.LWEStdev = math.Pow(2, -8)
	return p
}

func TestAnalyzeNetlistRejectsOverBudget(t *testing.T) {
	nl := nandChains([]int{4})
	p := degradedParams()
	r, err := AnalyzeNetlist(nl, p, 0)
	if err != nil {
		t.Fatal(err)
	}
	if r.OK() || r.Err() == nil {
		t.Fatalf("degraded parameters passed the check: %s", r)
	}
	if len(r.OverBudget) == 0 {
		t.Fatal("no over-budget gates reported")
	}
	// Depth-1 gates read only fresh encryptions and stay fine even here;
	// the failures start where a bootstrapped operand enters.
	for _, g := range r.OverBudget {
		if g.Depth < 2 {
			t.Fatalf("gate %d at depth %d flagged; only bootstrapped-operand gates should fail", g.Gate, g.Depth)
		}
	}
	if len(r.OverBudgetOutputs) == 0 {
		t.Fatal("over-noisy outputs not reported")
	}
	if r.HeadroomBits >= 0 {
		t.Fatalf("over-budget report claims %.2f bits of headroom", r.HeadroomBits)
	}
	if r.CircuitFailureProb < 0.5 {
		t.Fatalf("union failure bound %.3g implausibly low for degraded params", r.CircuitFailureProb)
	}
}

func TestAnalyzeNetlistErrors(t *testing.T) {
	// Malformed netlist: gate operand references a later node.
	bad := &circuit.Netlist{
		Name:      "bad",
		NumInputs: 1,
		Gates:     []circuit.Gate{{Kind: logic.AND, A: 5, B: 1}},
		Outputs:   []circuit.NodeID{2},
	}
	if _, err := AnalyzeNetlist(bad, params.Test(), 0); err == nil {
		t.Fatal("invalid netlist accepted")
	}
	// Unknown gate kind.
	ugly := &circuit.Netlist{
		Name:      "ugly",
		NumInputs: 2,
		Gates:     []circuit.Gate{{Kind: logic.Kind(99), A: 1, B: 2}},
		Outputs:   []circuit.NodeID{3},
	}
	if _, err := AnalyzeNetlist(ugly, params.Test(), 0); err == nil {
		t.Fatal("unknown gate kind accepted")
	}
}

func TestCheckNetlistStrictHook(t *testing.T) {
	nl := nandChains([]int{4})
	if err := CheckNetlist(nl, params.Test()); err != nil {
		t.Fatalf("clean netlist rejected: %v", err)
	}
	if err := CheckNetlist(nl, degradedParams()); err == nil {
		t.Fatal("over-budget netlist accepted by strict hook")
	}
}
