package noise

import (
	"math"
	"testing"

	"pytfhe/internal/circuit"
	"pytfhe/internal/logic"
	"pytfhe/internal/params"
)

// TestAnalyzeLUTNetlist checks the LUT branch of the dataflow: LUT gates
// are counted, their pre-bootstrap variance is the solver's Σc² times the
// operand variance (no bias term), and the worst feasible table — PARITY3
// with Σc² = 9 — still clears the default margin under default128, which
// is what lets lut-cluster run without a weight-norm cap.
func TestAnalyzeLUTNetlist(t *testing.T) {
	b := circuit.NewBuilder("lut-noise", circuit.NoOptimizations())
	x := b.Input("x")
	y := b.Input("y")
	z := b.Input("z")
	maj := b.LUT(0xE8, x, y, z)        // Σc² = 3, fresh operands
	par := b.LUT(0x96, maj, maj, z)    // simplifies: depends on builder folding
	deep := b.LUT(0x96, maj, par, maj) // PARITY3 over bootstrapped operands
	b.Output("o", b.LUT(0x7E, deep, x, y))
	nl := b.MustBuild()

	p := params.Default128()
	r, err := AnalyzeNetlist(nl, p, 0)
	if err != nil {
		t.Fatal(err)
	}
	if r.LUTs == 0 {
		t.Fatalf("no LUTs counted: %+v", r)
	}
	if r.LUTs > r.Bootstrapped {
		t.Fatalf("LUTs %d exceed bootstrapped %d", r.LUTs, r.Bootstrapped)
	}
	if !r.OK() {
		t.Fatalf("feasible LUT netlist over budget under %s: %v", p.Name, r.Err())
	}

	// The worst-case check directly: a PARITY3 whose operands all carry
	// bootstrap variance amplifies by exactly Σc² = 9.
	bud := Analyze(p)
	pl, ok := logic.SolveLUT(3, 0x96)
	if !ok {
		t.Fatal("PARITY3 unexpectedly infeasible")
	}
	if pl.WeightNormSq() != 9 {
		t.Fatalf("PARITY3 weight norm = %d, want 9", pl.WeightNormSq())
	}
	pre := 9 * bud.BootstrapVariance
	sig := bud.DecryptionMargin / math.Sqrt(pre)
	if sig < DefaultMinSigmas {
		t.Fatalf("PARITY3 over bootstrapped operands has %.2f sigmas under %s, below %.1f — lut-cluster needs a weight cap",
			sig, p.Name, DefaultMinSigmas)
	}
}

// TestAnalyzeLUTDepth checks LUT gates advance the bootstrap depth like
// classic gates: a LUT over bootstrapped operands sits one refresh deeper.
func TestAnalyzeLUTDepth(t *testing.T) {
	b := circuit.NewBuilder("lut-depth", circuit.NoOptimizations())
	x := b.Input("x")
	y := b.Input("y")
	z := b.Input("z")
	l1 := b.LUT(0xE8, x, y, z)
	l2 := b.LUT(0xE8, l1, y, z)
	b.Output("o", l2)
	nl := b.MustBuild()
	r, err := AnalyzeNetlist(nl, params.Default128(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if r.CriticalDepth != 2 {
		t.Fatalf("critical depth = %d, want 2", r.CriticalDepth)
	}
	if r.MaxNoise.Arity != 3 {
		t.Fatalf("max-noise gate arity = %d, want 3 (the depth-2 LUT)", r.MaxNoise.Arity)
	}
}
