package noise

import (
	"math"
	"testing"

	"pytfhe/internal/params"
	"pytfhe/internal/tfhe/boot"
	"pytfhe/internal/trand"
)

func TestDefault128BudgetIsSound(t *testing.T) {
	b := Analyze(params.Default128())
	if b.BootstrapVariance <= b.FreshVariance/1e6 {
		t.Fatalf("bootstrap variance %g implausibly small", b.BootstrapVariance)
	}
	// The defining soundness property: the worst-case gate input noise
	// must sit several standard deviations inside the decryption margin.
	// (The worst case is XOR's coefficient-2 combination; NAND-class gates
	// get an extra factor of 2 in margin.)
	if b.FailureSigmas < 4 {
		t.Fatalf("only %.1f sigmas of margin; gates would fail in practice", b.FailureSigmas)
	}
	t.Logf("default128: bootstrap stdev %.3g, margin %.1f sigmas",
		math.Sqrt(b.BootstrapVariance), b.FailureSigmas)
}

func TestTestParamsBudgetIsSound(t *testing.T) {
	b := Analyze(params.Test())
	if b.FailureSigmas < 8 {
		t.Fatalf("test parameters have only %.1f sigmas of margin", b.FailureSigmas)
	}
}

func TestFreshNoiseMatchesPrediction(t *testing.T) {
	p := params.Test()
	rng := trand.NewSeeded([]byte("noise-fresh"))
	sk, _, err := boot.GenerateKeys(p, rng)
	if err != nil {
		t.Fatal(err)
	}
	m := MeasureFreshEncryption(sk, 2000, []byte("fresh-meas"))
	predicted := p.LWEStdev * p.LWEStdev
	// Sample variance of 2000 draws should be within 20% of sigma^2.
	if m.Variance < predicted/1.5 || m.Variance > predicted*1.5 {
		t.Fatalf("fresh variance %.3g, predicted %.3g", m.Variance, predicted)
	}
	if math.Abs(m.Mean) > 5*math.Sqrt(predicted/2000) {
		t.Fatalf("fresh noise not centered: mean %.3g", m.Mean)
	}
}

func TestBootstrapNoiseWithinBudget(t *testing.T) {
	p := params.Test()
	rng := trand.NewSeeded([]byte("noise-boot"))
	sk, ck, err := boot.GenerateKeys(p, rng)
	if err != nil {
		t.Fatal(err)
	}
	m, err := MeasureBootstrapNoise(sk, ck, 60, []byte("boot-meas"))
	if err != nil {
		t.Fatal(err)
	}
	predicted := BootstrapVariance(p)
	// The closed form is an upper-bound style estimate (independence
	// assumptions, worst-case key weights): the measurement must not
	// exceed it by much, and should not be absurdly below it either.
	if m.Variance > predicted*4 {
		t.Fatalf("measured bootstrap variance %.3g exceeds prediction %.3g", m.Variance, predicted)
	}
	// Every sample must stay inside the decryption margin.
	if m.MaxAbs >= 1.0/16 {
		t.Fatalf("bootstrap noise %.3g reached the decryption margin", m.MaxAbs)
	}
	t.Logf("measured stdev %.3g vs predicted %.3g (max |err| %.3g)",
		math.Sqrt(m.Variance), math.Sqrt(predicted), m.MaxAbs)
}

func TestMeasurementAccumulator(t *testing.T) {
	var m Measurement
	for _, v := range []float64{0.5, -0.5, 0.5, -0.5} {
		m.accumulate(v)
	}
	m.finish(4)
	if m.Mean != 0 || m.Variance != 0.25 || m.MaxAbs != 0.5 || m.Samples != 4 {
		t.Fatalf("accumulator wrong: %+v", m)
	}
}
