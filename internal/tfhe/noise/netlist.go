package noise

import (
	"fmt"
	"math"
	"strings"

	"pytfhe/internal/circuit"
	"pytfhe/internal/logic"
	"pytfhe/internal/params"
	"pytfhe/internal/tfhe/gate"
)

// DefaultMinSigmas is the sigma margin `pytfhe check`, strict loading, and
// pytfhed registration demand between the worst phase-error stdev and the
// decryption margin. Four sigmas bound the per-gate failure probability by
// erfc(4/√2) ≈ 6.3e-5; the built-in default128 set clears it with ~0.24
// bits of headroom, so any regression in the parameter file or the noise
// model trips the check before it trips a decryption.
const DefaultMinSigmas = 4.0

// GateNoise is the analysis result for one bootstrapped gate: the
// worst-case variance of the linear combination entering its bootstrap,
// and the failure bound it implies.
type GateNoise struct {
	Gate  int            // gate index in nl.Gates
	ID    circuit.NodeID // node id (NumInputs+1+Gate)
	Kind  logic.Kind
	Arity uint8    // LUT arity, 0 for classic gates
	TT    logic.TT // LUT truth table (Arity != 0 only)
	Depth int      // bootstrap depth: refreshes on the longest path into this gate

	// PreVariance is the variance of the bootstrap input tmp = bias +
	// ca*a + cb*b (torus units). Sigmas is DecryptionMargin/stdev, and
	// FailureProb = erfc(Sigmas/√2) bounds the probability the blind
	// rotation reads the wrong message slot.
	PreVariance float64
	Sigmas      float64
	FailureProb float64
}

// describe names the gate for report text: the kind for classic gates, the
// arity and table for LUTs (whose Kind field is meaningless).
func (g GateNoise) describe() string {
	if g.Arity != 0 {
		return fmt.Sprintf("LUT%d[%#02x]", g.Arity, uint8(g.TT))
	}
	return g.Kind.String()
}

// NetlistReport is the result of the static noise-budget dataflow over one
// netlist under one parameter set.
type NetlistReport struct {
	Name      string // netlist name
	Params    string // parameter-set name
	MinSigmas float64
	Budget    Budget

	Gates        int
	Bootstrapped int
	LUTs         int // multi-input LUT gates (included in Bootstrapped)
	Outputs      int

	// MaxNoise is the bootstrapped gate with the lowest sigma margin (the
	// zero value when the netlist has no bootstrapped gates), and
	// CriticalDepth its bootstrap depth.
	MaxNoise      GateNoise
	CriticalDepth int

	// WorstOutput/WorstOutputSigmas track the output wire closest to a
	// decryption error: outputs decode by phase sign, so their margin is
	// the full 1/8 amplitude rather than the internal 1/16 slot
	// half-width. WorstOutput is -1 when every output is a noiseless
	// constant.
	WorstOutput       int
	WorstOutputSigmas float64

	// HeadroomBits is log2(worstSigmas/MinSigmas): how many times the
	// worst stdev could double before the netlist fails the check. +Inf
	// for a netlist with no noise-carrying wires.
	HeadroomBits float64

	// CircuitFailureProb is the union bound over every bootstrap and
	// every output read: P[any decryption error] <= Σ erfc(σ_i/√2),
	// capped at 1.
	CircuitFailureProb float64

	// OverBudget lists the gates (and OverBudgetOutputs the output
	// indices) whose sigma margin falls below MinSigmas.
	OverBudget        []GateNoise
	OverBudgetOutputs []int
}

// OK reports whether every gate and output clears the sigma margin.
func (r *NetlistReport) OK() bool {
	return len(r.OverBudget) == 0 && len(r.OverBudgetOutputs) == 0
}

// Err returns nil when the report is clean, and a descriptive error naming
// the worst offender otherwise.
func (r *NetlistReport) Err() error {
	if r.OK() {
		return nil
	}
	if len(r.OverBudget) > 0 {
		w := r.OverBudget[0]
		for _, g := range r.OverBudget[1:] {
			if g.Sigmas < w.Sigmas {
				w = g
			}
		}
		return fmt.Errorf("noise: netlist %q over budget under %s: gate %d (%s, depth %d) has %.2f sigmas of margin, need %.2f (%d gates, %d outputs over budget)",
			r.Name, r.Params, w.Gate, w.describe(), w.Depth, w.Sigmas, r.MinSigmas, len(r.OverBudget), len(r.OverBudgetOutputs))
	}
	return fmt.Errorf("noise: netlist %q over budget under %s: output %d has %.2f sigmas of margin, need %.2f",
		r.Name, r.Params, r.OverBudgetOutputs[0], r.WorstOutputSigmas, r.MinSigmas)
}

// String renders the per-netlist report `pytfhe check` prints.
func (r *NetlistReport) String() string {
	var b strings.Builder
	status := "OK"
	if !r.OK() {
		status = fmt.Sprintf("OVER BUDGET (%d gates, %d outputs)", len(r.OverBudget), len(r.OverBudgetOutputs))
	}
	fmt.Fprintf(&b, "noise budget %q under %s: %s\n", r.Name, r.Params, status)
	fmt.Fprintf(&b, "  gates %d (%d bootstrapped, %d LUTs), outputs %d, min sigmas %.1f\n",
		r.Gates, r.Bootstrapped, r.LUTs, r.Outputs, r.MinSigmas)
	if r.Bootstrapped > 0 {
		fmt.Fprintf(&b, "  max-noise gate: #%d %s at bootstrap depth %d (critical depth %d): stdev %.3g, %.2f sigmas, P[fail] %.3g\n",
			r.MaxNoise.Gate, r.MaxNoise.describe(), r.MaxNoise.Depth, r.CriticalDepth,
			math.Sqrt(r.MaxNoise.PreVariance), r.MaxNoise.Sigmas, r.MaxNoise.FailureProb)
	}
	if r.WorstOutput >= 0 {
		fmt.Fprintf(&b, "  worst output: #%d at %.2f sigmas\n", r.WorstOutput, r.WorstOutputSigmas)
	}
	fmt.Fprintf(&b, "  headroom %.2f bits, P[any decryption error] <= %.3g", r.HeadroomBits, r.CircuitFailureProb)
	return b.String()
}

// AnalyzeNetlist propagates worst-case noise variance gate by gate through
// nl under parameter set p: inputs carry the fresh encryption variance,
// free gates pass their operand variance through unchanged (NOT negates,
// COPY copies — neither amplifies), and each bootstrapped gate first forms
// the linear combination ca*a + cb*b (variances add with squared
// coefficients; the bias is noiseless) and then resets its output to the
// bootstrap variance. Every pre-bootstrap combination and every output
// wire must keep minSigmas standard deviations below its decryption
// margin; minSigmas <= 0 selects DefaultMinSigmas.
//
// The returned error covers only malformed inputs (invalid netlist,
// unknown gate kind); an over-budget netlist returns a report whose OK()
// is false and Err() is non-nil.
func AnalyzeNetlist(nl *circuit.Netlist, p *params.GateParams, minSigmas float64) (*NetlistReport, error) {
	if err := nl.Validate(); err != nil {
		return nil, err
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if minSigmas <= 0 {
		minSigmas = DefaultMinSigmas
	}
	b := Analyze(p)
	r := &NetlistReport{
		Name:         nl.Name,
		Params:       p.Name,
		MinSigmas:    minSigmas,
		Budget:       b,
		Gates:        len(nl.Gates),
		Outputs:      len(nl.Outputs),
		WorstOutput:  -1,
		HeadroomBits: math.Inf(1),
	}

	// variance[id] and bdepth[id] for node ids 1..NumNodes (0 unused).
	variance := make([]float64, nl.NumNodes()+1)
	bdepth := make([]int, nl.NumNodes()+1)
	for i := 1; i <= nl.NumInputs; i++ {
		variance[i] = b.FreshVariance
	}

	// record folds one bootstrapped gate's pre-bootstrap variance into the
	// report and resets its output to the refreshed bootstrap variance.
	record := func(gn GateNoise, pre float64, worstSigmas *float64) {
		gn.PreVariance = pre
		gn.Sigmas = math.Inf(1)
		if pre > 0 {
			gn.Sigmas = b.DecryptionMargin / math.Sqrt(pre)
			gn.FailureProb = math.Erfc(gn.Sigmas / math.Sqrt2)
		}
		r.CircuitFailureProb += gn.FailureProb
		if gn.Sigmas < *worstSigmas {
			*worstSigmas = gn.Sigmas
			r.MaxNoise = gn
			r.CriticalDepth = gn.Depth
		}
		if gn.Sigmas < minSigmas {
			r.OverBudget = append(r.OverBudget, gn)
		}
		variance[gn.ID] = b.BootstrapVariance
		bdepth[gn.ID] = gn.Depth
	}

	worstSigmas := math.Inf(1)
	for i, g := range nl.Gates {
		id := nl.GateID(i)
		if g.IsLUT() {
			// A k-input LUT is one programmable bootstrap of the weighted
			// combination Σ cᵢ·xᵢ with no bias; the solver's weights give
			// the exact variance amplification, and the msize-8 test vector
			// keeps the same 1/16 cell half-width the classic gates use.
			pl, ok := logic.SolveLUT(int(g.Arity), g.TT)
			if !ok {
				return nil, fmt.Errorf("noise: gate %d: LUT arity %d table %#02x has no single-bootstrap plan", i, g.Arity, uint8(g.TT))
			}
			r.Bootstrapped++
			r.LUTs++
			var pre float64
			d := 0
			for k := 0; k < int(g.Arity); k++ {
				op := g.Operand(k)
				c := float64(pl.Weights[k])
				pre += c * c * variance[op]
				if bdepth[op] > d {
					d = bdepth[op]
				}
			}
			record(GateNoise{Gate: i, ID: id, Kind: g.Kind, Arity: g.Arity, TT: g.TT, Depth: d + 1}, pre, &worstSigmas)
			continue
		}
		if g.Kind >= logic.NumKinds {
			return nil, fmt.Errorf("noise: gate %d has unknown kind %d", i, g.Kind)
		}
		if !g.Kind.NeedsBootstrap() {
			switch g.Kind {
			case logic.False, logic.True:
				variance[id] = 0
			case logic.COPY, logic.NOT:
				variance[id] = variance[g.A]
				bdepth[id] = bdepth[g.A]
			case logic.COPYB, logic.NOTB:
				variance[id] = variance[g.B]
				bdepth[id] = bdepth[g.B]
			default:
				return nil, fmt.Errorf("noise: gate %d: free kind %v not modeled", i, g.Kind)
			}
			continue
		}
		ca, cb, ok := gate.PlanCoefficients(g.Kind)
		if !ok {
			return nil, fmt.Errorf("noise: gate %d: no bootstrap plan for kind %v", i, g.Kind)
		}
		r.Bootstrapped++
		pre := float64(ca)*float64(ca)*variance[g.A] + float64(cb)*float64(cb)*variance[g.B]
		d := bdepth[g.A]
		if bdepth[g.B] > d {
			d = bdepth[g.B]
		}
		record(GateNoise{Gate: i, ID: id, Kind: g.Kind, Depth: d + 1}, pre, &worstSigmas)
	}

	// Outputs decode by phase sign, so the margin is the full ±1/8
	// amplitude (twice the internal slot half-width).
	outputMargin := 2 * b.DecryptionMargin
	r.WorstOutputSigmas = math.Inf(1)
	for i, out := range nl.Outputs {
		if out.IsConst() {
			continue
		}
		v := variance[out]
		if v <= 0 {
			continue
		}
		s := outputMargin / math.Sqrt(v)
		if s < r.WorstOutputSigmas {
			r.WorstOutputSigmas = s
			r.WorstOutput = i
		}
		r.CircuitFailureProb += math.Erfc(s / math.Sqrt2)
		if s < minSigmas {
			r.OverBudgetOutputs = append(r.OverBudgetOutputs, i)
		}
		if s < worstSigmas {
			worstSigmas = s
		}
	}
	if r.WorstOutput < 0 {
		r.WorstOutputSigmas = math.Inf(1)
	}
	if r.CircuitFailureProb > 1 {
		r.CircuitFailureProb = 1
	}
	if !math.IsInf(worstSigmas, 1) {
		r.HeadroomBits = math.Log2(worstSigmas / minSigmas)
	}
	return r, nil
}

// CheckNetlist is the strict-mode hook: it runs AnalyzeNetlist with the
// default sigma margin and folds an over-budget report into the error.
// Used by `pytfhe run -strict` and pytfhed program registration.
func CheckNetlist(nl *circuit.Netlist, p *params.GateParams) error {
	r, err := AnalyzeNetlist(nl, p, DefaultMinSigmas)
	if err != nil {
		return err
	}
	return r.Err()
}
