package tlwe

import (
	"math"
	"testing"

	"pytfhe/internal/tfhe/lwe"
	"pytfhe/internal/torus"
	"pytfhe/internal/trand"
)

const (
	testN = 256
	testK = 1
)

func TestEncryptPhaseRoundTrip(t *testing.T) {
	rng := trand.NewSeeded([]byte("tlwe-enc"))
	key := NewKey(testN, testK, math.Pow(2, -25), rng)
	const msize = 8
	mu := torus.NewTorusPoly(testN)
	for i := range mu.Coefs {
		mu.Coefs[i] = torus.ModSwitchToTorus32(int32(i%msize), msize)
	}
	s := NewSample(testN, testK)
	Encrypt(s, mu, key.Stdev, key, rng)
	phase := torus.NewTorusPoly(testN)
	Phase(phase, s, key)
	for i := range phase.Coefs {
		got := torus.ModSwitchFromTorus32(phase.Coefs[i], msize)
		if got != int32(i%msize) {
			t.Fatalf("coef %d decrypted to %d, want %d", i, got, i%msize)
		}
	}
}

func TestNoiselessTrivialPhase(t *testing.T) {
	rng := trand.NewSeeded([]byte("tlwe-trivial"))
	key := NewKey(testN, testK, 0, rng)
	mu := torus.NewTorusPoly(testN)
	mu.Coefs[3] = torus.ModSwitchToTorus32(1, 4)
	s := NewSample(testN, testK)
	s.NoiselessTrivial(mu)
	phase := torus.NewTorusPoly(testN)
	Phase(phase, s, key)
	for i := range phase.Coefs {
		if phase.Coefs[i] != mu.Coefs[i] {
			t.Fatalf("trivial phase coef %d = %d, want %d", i, phase.Coefs[i], mu.Coefs[i])
		}
	}
}

func TestHomomorphicPolyAddition(t *testing.T) {
	rng := trand.NewSeeded([]byte("tlwe-add"))
	key := NewKey(testN, testK, math.Pow(2, -25), rng)
	const msize = 16
	mua := torus.NewTorusPoly(testN)
	mub := torus.NewTorusPoly(testN)
	for i := range mua.Coefs {
		mua.Coefs[i] = torus.ModSwitchToTorus32(int32(i%4), msize)
		mub.Coefs[i] = torus.ModSwitchToTorus32(int32(i%3), msize)
	}
	sa := NewSample(testN, testK)
	sb := NewSample(testN, testK)
	Encrypt(sa, mua, key.Stdev, key, rng)
	Encrypt(sb, mub, key.Stdev, key, rng)
	sa.AddTo(sb)
	phase := torus.NewTorusPoly(testN)
	Phase(phase, sa, key)
	for i := range phase.Coefs {
		want := int32(i%4) + int32(i%3)
		if got := torus.ModSwitchFromTorus32(phase.Coefs[i], msize); got != want {
			t.Fatalf("coef %d: got %d want %d", i, got, want)
		}
	}
}

func TestSampleExtract(t *testing.T) {
	rng := trand.NewSeeded([]byte("tlwe-extract"))
	key := NewKey(testN, testK, math.Pow(2, -25), rng)
	extKey := key.ExtractLWEKey()
	if extKey.N != testN*testK {
		t.Fatalf("extracted key dimension = %d, want %d", extKey.N, testN*testK)
	}
	const msize = 8
	for msg := int32(0); msg < msize; msg++ {
		mu := torus.NewTorusPoly(testN)
		mu.Coefs[0] = torus.ModSwitchToTorus32(msg, msize)
		s := NewSample(testN, testK)
		Encrypt(s, mu, key.Stdev, key, rng)
		ext := lwe.NewSample(testN * testK)
		ExtractSample(ext, s)
		if got := lwe.Decrypt(ext, extKey, msize); got != msg {
			t.Fatalf("extracted coef0 decrypted to %d, want %d", got, msg)
		}
	}
}

func TestMulByXaiMinusOneSample(t *testing.T) {
	rng := trand.NewSeeded([]byte("tlwe-rot"))
	key := NewKey(testN, testK, math.Pow(2, -28), rng)
	const msize = 8
	mu := torus.NewTorusPoly(testN)
	mu.Coefs[0] = torus.ModSwitchToTorus32(2, msize)
	s := NewSample(testN, testK)
	Encrypt(s, mu, key.Stdev, key, rng)

	rot := NewSample(testN, testK)
	rot.MulByXaiMinusOne(5, s)
	rot.AddTo(s) // rot = X^5 * s

	phase := torus.NewTorusPoly(testN)
	Phase(phase, rot, key)
	if got := torus.ModSwitchFromTorus32(phase.Coefs[5], msize); got != 2 {
		t.Fatalf("rotated message at coef 5 = %d, want 2", got)
	}
	if got := torus.ModSwitchFromTorus32(phase.Coefs[0], msize); got != 0 {
		t.Fatalf("coef 0 after rotation = %d, want 0", got)
	}
}
