// Package tlwe implements ring-LWE ("TLWE") ciphertexts over torus
// polynomials: key generation, encryption of polynomial messages, the
// homomorphic ring operations used during blind rotation, and the sample
// extraction that converts coefficient 0 of a TLWE phase into a scalar LWE
// sample.
package tlwe

import (
	"pytfhe/internal/tfhe/lwe"
	"pytfhe/internal/torus"
	"pytfhe/internal/trand"
)

// Key is a TLWE secret key: k binary polynomials of degree N.
type Key struct {
	N     int // ring degree
	K     int // number of mask polynomials
	Polys []*torus.IntPoly
	Stdev float64

	// Cached Fourier-domain representation of the key polynomials, built
	// lazily; it makes bulk encryption (bootstrapping-key generation)
	// O(N log N) per sample instead of O(N^2).
	fourier []*torus.FourierPoly
	proc    *torus.Processor
}

// fourierKey returns (building if necessary) the Fourier representation of
// the key polynomials and a transform processor for the key's ring degree.
func (key *Key) fourierKey() ([]*torus.FourierPoly, *torus.Processor) {
	if key.fourier == nil {
		key.proc = torus.NewProcessor(key.N)
		key.fourier = make([]*torus.FourierPoly, key.K)
		for i, p := range key.Polys {
			f := torus.NewFourierPoly(key.N)
			key.proc.IntToFourier(f, p)
			key.fourier[i] = f
		}
	}
	return key.fourier, key.proc
}

// NewKey samples a fresh binary TLWE key with k polynomials of degree n.
func NewKey(n, k int, stdev float64, rng *trand.Source) *Key {
	key := &Key{N: n, K: k, Stdev: stdev, Polys: make([]*torus.IntPoly, k)}
	for i := range key.Polys {
		p := torus.NewIntPoly(n)
		for j := range p.Coefs {
			p.Coefs[j] = rng.Bit()
		}
		key.Polys[i] = p
	}
	return key
}

// ExtractLWEKey returns the (N·k)-dimensional scalar LWE key whose bits are
// the coefficients of the TLWE key. Samples extracted from TLWE ciphertexts
// decrypt under this key.
func (key *Key) ExtractLWEKey() *lwe.Key {
	out := &lwe.Key{N: key.N * key.K, Bits: make([]int32, key.N*key.K), Stdev: key.Stdev}
	for i, p := range key.Polys {
		copy(out.Bits[i*key.N:], p.Coefs)
	}
	return out
}

// Sample is a TLWE ciphertext: k mask polynomials A[0..k-1] and the body
// polynomial B (stored as A[k]).
type Sample struct {
	A        []*torus.TorusPoly // length k+1; A[k] is the body
	K        int
	Variance float64
}

// NewSample returns a zero TLWE sample for ring degree n with k masks.
func NewSample(n, k int) *Sample {
	s := &Sample{A: make([]*torus.TorusPoly, k+1), K: k}
	for i := range s.A {
		s.A[i] = torus.NewTorusPoly(n)
	}
	return s
}

// B returns the body polynomial of the sample.
func (s *Sample) B() *torus.TorusPoly { return s.A[s.K] }

// N returns the ring degree.
func (s *Sample) N() int { return s.A[0].N() }

// Clear resets the sample to the trivial encryption of zero.
func (s *Sample) Clear() {
	for _, p := range s.A {
		p.Clear()
	}
	s.Variance = 0
}

// Copy copies src into s.
func (s *Sample) Copy(src *Sample) {
	for i, p := range src.A {
		s.A[i].Copy(p)
	}
	s.Variance = src.Variance
}

// NoiselessTrivial sets the sample to (0, mu) for a public polynomial mu.
func (s *Sample) NoiselessTrivial(mu *torus.TorusPoly) {
	for i := 0; i < s.K; i++ {
		s.A[i].Clear()
	}
	s.B().Copy(mu)
	s.Variance = 0
}

// AddTo computes s += src.
func (s *Sample) AddTo(src *Sample) {
	for i, p := range src.A {
		s.A[i].AddTo(p)
	}
	s.Variance += src.Variance
}

// SubFrom computes s -= src.
func (s *Sample) SubFrom(src *Sample) {
	for i, p := range src.A {
		s.A[i].SubFrom(p)
	}
	s.Variance += src.Variance
}

// MulByXaiMinusOne sets s = (X^a - 1) * src component-wise.
func (s *Sample) MulByXaiMinusOne(a int, src *Sample) {
	for i, p := range src.A {
		s.A[i].MulByXaiMinusOne(a, p)
	}
	s.Variance = 2 * src.Variance
}

// EncryptZero fills dst with an encryption of the zero polynomial. The
// mask-times-key products run through the FFT so that bootstrapping-key
// generation (thousands of ring encryptions) stays fast.
func EncryptZero(dst *Sample, alpha float64, key *Key, rng *trand.Source) {
	n := key.N
	keyF, proc := key.fourierKey()
	b := dst.B()
	for j := 0; j < n; j++ {
		b.Coefs[j] = trand.DoubleToTorus32(rng.Normal() * alpha)
	}
	fa := torus.NewFourierPoly(n)
	acc := torus.NewFourierPoly(n)
	for i := 0; i < key.K; i++ {
		a := dst.A[i]
		for j := 0; j < n; j++ {
			a.Coefs[j] = rng.Torus32()
		}
		proc.TorusToFourier(fa, a)
		acc.MulAccTo(keyF[i], fa)
	}
	proc.AddFourierToTorus(b, acc)
	dst.Variance = alpha * alpha
}

// Encrypt encrypts the torus polynomial mu: dst = EncZero + (0, mu).
func Encrypt(dst *Sample, mu *torus.TorusPoly, alpha float64, key *Key, rng *trand.Source) {
	EncryptZero(dst, alpha, key, rng)
	dst.B().AddTo(mu)
}

// Phase computes the phase polynomial b - sum_i a_i * s_i of the sample.
func Phase(dst *torus.TorusPoly, s *Sample, key *Key) {
	dst.Copy(s.B())
	neg := torus.NewTorusPoly(key.N)
	tmp := torus.NewTorusPoly(key.N)
	for i := 0; i < key.K; i++ {
		torus.MulNaive(tmp, key.Polys[i], s.A[i])
		neg.AddTo(tmp)
	}
	dst.SubFrom(neg)
}

// ExtractSample extracts coefficient 0 of the phase of src as a scalar LWE
// sample of dimension N·k (under the key returned by ExtractLWEKey).
func ExtractSample(dst *lwe.Sample, src *Sample) {
	n := src.N()
	for i := 0; i < src.K; i++ {
		a := src.A[i]
		base := i * n
		dst.A[base] = a.Coefs[0]
		for j := 1; j < n; j++ {
			dst.A[base+j] = -a.Coefs[n-j]
		}
	}
	dst.B = src.B().Coefs[0]
	dst.Variance = src.Variance
}
