package gate

import (
	"sync"
	"testing"

	"pytfhe/internal/logic"
	"pytfhe/internal/params"
	"pytfhe/internal/tfhe/boot"
	"pytfhe/internal/trand"
)

// testKeys are generated once and shared: key generation dominates the cost
// of this package's tests.
var (
	keyOnce sync.Once
	testSK  *boot.SecretKey
	testCK  *boot.CloudKey
)

func keys(t testing.TB) (*boot.SecretKey, *boot.CloudKey) {
	keyOnce.Do(func() {
		rng := trand.NewSeeded([]byte("gate-test-keys"))
		sk, ck, err := boot.GenerateKeys(params.Test(), rng)
		if err != nil {
			panic(err)
		}
		testSK, testCK = sk, ck
	})
	return testSK, testCK
}

func TestEncryptDecryptBit(t *testing.T) {
	sk, _ := keys(t)
	rng := trand.NewSeeded([]byte("bits"))
	ct := NewCiphertext(sk.Params)
	for i := 0; i < 32; i++ {
		bit := i%3 == 0
		Encrypt(ct, bit, sk, rng)
		if got := Decrypt(ct, sk); got != bit {
			t.Fatalf("round trip %v -> %v", bit, got)
		}
	}
}

func TestTrivialCiphertext(t *testing.T) {
	sk, _ := keys(t)
	ct := NewCiphertext(sk.Params)
	Trivial(ct, true)
	if !Decrypt(ct, sk) {
		t.Fatal("trivial true decrypted as false")
	}
	Trivial(ct, false)
	if Decrypt(ct, sk) {
		t.Fatal("trivial false decrypted as true")
	}
}

// TestAllBinaryGates evaluates every kind in the gate alphabet on all four
// input combinations and checks the homomorphic result against the truth
// table.
func TestAllBinaryGates(t *testing.T) {
	sk, ck := keys(t)
	rng := trand.NewSeeded([]byte("all-gates"))
	eng := NewEngine(ck)
	ca := NewCiphertext(sk.Params)
	cb := NewCiphertext(sk.Params)
	out := NewCiphertext(sk.Params)

	for kind := logic.Kind(0); kind < logic.NumKinds; kind++ {
		for _, a := range []bool{false, true} {
			for _, b := range []bool{false, true} {
				Encrypt(ca, a, sk, rng)
				Encrypt(cb, b, sk, rng)
				if err := eng.Binary(kind, out, ca, cb); err != nil {
					t.Fatalf("%v(%v,%v): %v", kind, a, b, err)
				}
				want := kind.Eval(a, b)
				if got := Decrypt(out, sk); got != want {
					t.Errorf("%v(%v,%v) = %v, want %v", kind, a, b, got, want)
				}
			}
		}
	}
}

func TestGateChaining(t *testing.T) {
	// A NAND-only chain exercises noise refresh across sequential
	// bootstraps: out = NAND(NAND(a,a), NAND(b,b)) = a OR b.
	sk, ck := keys(t)
	rng := trand.NewSeeded([]byte("chain"))
	eng := NewEngine(ck)
	ca := NewCiphertext(sk.Params)
	cb := NewCiphertext(sk.Params)
	na := NewCiphertext(sk.Params)
	nb := NewCiphertext(sk.Params)
	out := NewCiphertext(sk.Params)
	for _, a := range []bool{false, true} {
		for _, b := range []bool{false, true} {
			Encrypt(ca, a, sk, rng)
			Encrypt(cb, b, sk, rng)
			if err := eng.Binary(logic.NAND, na, ca, ca); err != nil {
				t.Fatal(err)
			}
			if err := eng.Binary(logic.NAND, nb, cb, cb); err != nil {
				t.Fatal(err)
			}
			if err := eng.Binary(logic.NAND, out, na, nb); err != nil {
				t.Fatal(err)
			}
			if got := Decrypt(out, sk); got != (a || b) {
				t.Errorf("NAND-composed OR(%v,%v) = %v", a, b, got)
			}
		}
	}
}

func TestDeepNANDChain(t *testing.T) {
	if testing.Short() {
		t.Skip("deep chain skipped in -short mode")
	}
	// 64 sequential bootstraps: the output must stay correct, demonstrating
	// unbounded depth (the defining property of gate bootstrapping).
	sk, ck := keys(t)
	rng := trand.NewSeeded([]byte("deep"))
	eng := NewEngine(ck)
	ct := NewCiphertext(sk.Params)
	Encrypt(ct, true, sk, rng)
	cur := true
	for i := 0; i < 64; i++ {
		if err := eng.Binary(logic.NAND, ct, ct, ct); err != nil {
			t.Fatal(err)
		}
		cur = !cur // NAND(x, x) = ¬x
		if got := Decrypt(ct, sk); got != cur {
			t.Fatalf("step %d: got %v want %v", i, got, cur)
		}
	}
}

func TestMux(t *testing.T) {
	sk, ck := keys(t)
	rng := trand.NewSeeded([]byte("mux"))
	eng := NewEngine(ck)
	sel := NewCiphertext(sk.Params)
	ca := NewCiphertext(sk.Params)
	cb := NewCiphertext(sk.Params)
	out := NewCiphertext(sk.Params)
	for _, s := range []bool{false, true} {
		for _, a := range []bool{false, true} {
			for _, b := range []bool{false, true} {
				Encrypt(sel, s, sk, rng)
				Encrypt(ca, a, sk, rng)
				Encrypt(cb, b, sk, rng)
				if err := eng.Mux(out, sel, ca, cb); err != nil {
					t.Fatal(err)
				}
				want := b
				if s {
					want = a
				}
				if got := Decrypt(out, sk); got != want {
					t.Errorf("mux(%v,%v,%v) = %v, want %v", s, a, b, got, want)
				}
			}
		}
	}
}

func TestProfileAccumulates(t *testing.T) {
	sk, ck := keys(t)
	rng := trand.NewSeeded([]byte("profile"))
	eng := NewEngine(ck)
	eng.Eval.Profile = true
	ca := NewCiphertext(sk.Params)
	cb := NewCiphertext(sk.Params)
	out := NewCiphertext(sk.Params)
	Encrypt(ca, true, sk, rng)
	Encrypt(cb, false, sk, rng)
	for i := 0; i < 3; i++ {
		if err := eng.Binary(logic.NAND, out, ca, cb); err != nil {
			t.Fatal(err)
		}
	}
	prof := eng.Eval.Prof
	if prof.Gates != 3 {
		t.Fatalf("profiled %d gates, want 3", prof.Gates)
	}
	if prof.BlindRotate <= 0 || prof.KeySwitch <= 0 {
		t.Fatalf("expected positive phase times, got %+v", prof)
	}
	if prof.BlindRotate <= prof.KeySwitch {
		t.Errorf("blind rotation (%v) should dominate key switching (%v), as in Fig. 7", prof.BlindRotate, prof.KeySwitch)
	}
}

func BenchmarkBootstrappedNAND(b *testing.B) {
	sk, ck := keys(b)
	rng := trand.NewSeeded([]byte("bench"))
	eng := NewEngine(ck)
	ca := NewCiphertext(sk.Params)
	cb := NewCiphertext(sk.Params)
	out := NewCiphertext(sk.Params)
	Encrypt(ca, true, sk, rng)
	Encrypt(cb, false, sk, rng)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := eng.Binary(logic.NAND, out, ca, cb); err != nil {
			b.Fatal(err)
		}
	}
}
