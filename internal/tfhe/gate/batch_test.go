package gate

import (
	"testing"

	"pytfhe/internal/logic"
	"pytfhe/internal/params"
	"pytfhe/internal/tfhe/boot"
	"pytfhe/internal/trand"
)

// TestBinaryBatchMatchesBinary checks that one batched dispatch over all ten
// bootstrapped kinds is bit-exact with per-gate Binary on the same inputs.
func TestBinaryBatchMatchesBinary(t *testing.T) {
	rng := trand.NewSeeded([]byte("gate-batch"))
	p := params.Test()
	sk, ck, err := boot.GenerateKeys(p, rng)
	if err != nil {
		t.Fatal(err)
	}
	single := NewEngine(ck)
	batched := NewEngine(ck)

	kinds := []logic.Kind{logic.AND, logic.NAND, logic.OR, logic.NOR, logic.XOR,
		logic.XNOR, logic.ANDNY, logic.ANDYN, logic.ORNY, logic.ORYN}
	n := len(kinds)
	a := make([]*Ciphertext, n)
	b := make([]*Ciphertext, n)
	want := make([]*Ciphertext, n)
	got := make([]*Ciphertext, n)
	for m := 0; m < n; m++ {
		a[m] = NewCiphertext(p)
		b[m] = NewCiphertext(p)
		Encrypt(a[m], m%2 == 0, sk, rng)
		Encrypt(b[m], m%3 == 0, sk, rng)
		want[m] = NewCiphertext(p)
		got[m] = NewCiphertext(p)
		if err := single.Binary(kinds[m], want[m], a[m], b[m]); err != nil {
			t.Fatal(err)
		}
	}
	if err := batched.BinaryBatch(kinds, got, a, b); err != nil {
		t.Fatal(err)
	}
	for m := 0; m < n; m++ {
		if got[m].B != want[m].B {
			t.Fatalf("kind %v: body %#x, want %#x", kinds[m], got[m].B, want[m].B)
		}
		for i := range want[m].A {
			if got[m].A[i] != want[m].A[i] {
				t.Fatalf("kind %v mask %d: %#x, want %#x", kinds[m], i, got[m].A[i], want[m].A[i])
			}
		}
		// Semantics: decrypt and compare against the boolean truth table.
		wantBit := kinds[m].Eval(m%2 == 0, m%3 == 0)
		if Decrypt(got[m], sk) != wantBit {
			t.Fatalf("kind %v decrypts to %v, want %v", kinds[m], !wantBit, wantBit)
		}
	}
}

// TestBinaryBatchRejectsFreeKinds ensures linear kinds are refused: the
// caller must evaluate them inline instead of spending a batch slot.
func TestBinaryBatchRejectsFreeKinds(t *testing.T) {
	rng := trand.NewSeeded([]byte("gate-batch-free"))
	p := params.Test()
	_, ck, err := boot.GenerateKeys(p, rng)
	if err != nil {
		t.Fatal(err)
	}
	e := NewEngine(ck)
	c := NewCiphertext(p)
	one := []*Ciphertext{c}
	if err := e.BinaryBatch([]logic.Kind{logic.NOT}, one, one, one); err == nil {
		t.Fatal("free kind accepted")
	}
	if err := e.BinaryBatch([]logic.Kind{logic.AND}, one, one, nil); err == nil {
		t.Fatal("length mismatch accepted")
	}
}

// TestBatchBootstrapCount checks the combined profile counter.
func TestBatchBootstrapCount(t *testing.T) {
	rng := trand.NewSeeded([]byte("gate-batch-count"))
	p := params.Test()
	sk, ck, err := boot.GenerateKeys(p, rng)
	if err != nil {
		t.Fatal(err)
	}
	e := NewEngine(ck)
	e.Eval.Profile = true
	a := NewCiphertext(p)
	b := NewCiphertext(p)
	Encrypt(a, true, sk, rng)
	Encrypt(b, false, sk, rng)
	out := NewCiphertext(p)
	if err := e.Binary(logic.NAND, out, a, b); err != nil {
		t.Fatal(err)
	}
	kinds := []logic.Kind{logic.AND, logic.OR, logic.XOR}
	outs := []*Ciphertext{NewCiphertext(p), NewCiphertext(p), NewCiphertext(p)}
	ins := []*Ciphertext{a, a, a}
	ins2 := []*Ciphertext{b, b, b}
	if err := e.BinaryBatch(kinds, outs, ins, ins2); err != nil {
		t.Fatal(err)
	}
	if got := e.BootstrapCount(); got != 4 {
		t.Fatalf("BootstrapCount = %d, want 4", got)
	}
	bp := e.BatchProf()
	if bp.Batches != 1 || bp.BatchedGates != 3 {
		t.Fatalf("batch profile = %+v", bp)
	}
}
