package gate

import (
	"testing"

	"pytfhe/internal/logic"
	"pytfhe/internal/trand"
)

// TestLUTKernel evaluates every feasible arity-2 and arity-3 table on a
// spread of input assignments through the single-gate programmable
// bootstrap and checks decryption against the cleartext table.
// Exhaustively testing all 48 feasible arity-3 tables × 8 assignments
// would dominate the package's runtime, so a representative set is pinned
// (symmetric, asymmetric, high-norm) and the rest rely on the
// machine-verified cell model in internal/logic.
func TestLUTKernel(t *testing.T) {
	sk, ck := keys(t)
	eng := NewEngine(ck)
	rng := trand.NewSeeded([]byte("lut-kernel"))

	cases := []struct {
		name  string
		arity int
		tt    logic.TT
	}{
		{"AND2", 2, logic.TTOf(logic.AND)},
		{"XOR2", 2, logic.TTOf(logic.XOR)},
		{"MAJ", 3, 0xE8},
		{"PARITY3", 3, 0x96}, // worst feasible norm Σc² = 9
		{"A_XOR_BC", 3, 0x78},
		{"XOR_SPREAD", 3, 0x7E},
	}
	ins := make([]*Ciphertext, logic.MaxLUTArity)
	for i := range ins {
		ins[i] = NewCiphertext(sk.Params)
	}
	out := NewCiphertext(sk.Params)
	for _, c := range cases {
		for v := 0; v < 1<<c.arity; v++ {
			for i := 0; i < c.arity; i++ {
				Encrypt(ins[i], v>>(c.arity-1-i)&1 == 1, sk, rng)
			}
			if err := eng.LUT(c.arity, c.tt, out, ins[:c.arity]...); err != nil {
				t.Fatalf("%s: %v", c.name, err)
			}
			want := c.tt.Eval(uint8(v))
			if got := Decrypt(out, sk); got != want {
				t.Fatalf("%s(%0*b) = %v, want %v", c.name, c.arity, v, got, want)
			}
		}
	}

	// Infeasible tables are refused, not silently mis-evaluated.
	if err := eng.LUT(3, 0x80, out, ins[0], ins[1], ins[2]); err == nil {
		t.Fatal("AND3 accepted despite having no single-bootstrap plan")
	}
}

// samplesEqual reports field-wise equality of two LWE samples.
func samplesEqual(x, y *Ciphertext) bool {
	if x.B != y.B || len(x.A) != len(y.A) {
		return false
	}
	for i := range x.A {
		if x.A[i] != y.A[i] {
			return false
		}
	}
	return true
}

// TestOpBatchMixed runs a batch interleaving classic bootstrapped gates
// and LUT members and checks every member against its cleartext function,
// plus bit-exactness with the single-gate paths.
func TestOpBatchMixed(t *testing.T) {
	sk, ck := keys(t)
	eng := NewEngine(ck)
	single := NewEngine(ck)
	rng := trand.NewSeeded([]byte("op-batch"))

	ops := []Op{
		{Kind: logic.AND},
		{TT: 0xE8, Arity: 3},
		{Kind: logic.XOR},
		{TT: 0x96, Arity: 3},
		{TT: logic.TTOf(logic.NAND), Arity: 2},
		{Kind: logic.NOR},
	}
	n := len(ops)
	a := make([]*Ciphertext, n)
	b := make([]*Ciphertext, n)
	c := make([]*Ciphertext, n)
	dst := make([]*Ciphertext, n)
	sref := make([]*Ciphertext, n)
	bits := make([][3]bool, n)
	for m := range ops {
		a[m] = NewCiphertext(sk.Params)
		b[m] = NewCiphertext(sk.Params)
		dst[m] = NewCiphertext(sk.Params)
		sref[m] = NewCiphertext(sk.Params)
		bits[m] = [3]bool{m%2 == 0, m%3 == 0, m%4 == 0}
		Encrypt(a[m], bits[m][0], sk, rng)
		Encrypt(b[m], bits[m][1], sk, rng)
		if ops[m].Arity >= 3 {
			c[m] = NewCiphertext(sk.Params)
			Encrypt(c[m], bits[m][2], sk, rng)
		}
	}
	if err := eng.OpBatch(ops, dst, a, b, c); err != nil {
		t.Fatal(err)
	}
	for m, op := range ops {
		var want bool
		if op.IsLUT() {
			want = op.TT.EvalBits(bits[m][:op.Arity]...)
			ins := []*Ciphertext{a[m], b[m], c[m]}
			if err := single.LUT(int(op.Arity), op.TT, sref[m], ins[:op.Arity]...); err != nil {
				t.Fatal(err)
			}
		} else {
			want = op.Kind.Eval(bits[m][0], bits[m][1])
			if err := single.Binary(op.Kind, sref[m], a[m], b[m]); err != nil {
				t.Fatal(err)
			}
		}
		if got := Decrypt(dst[m], sk); got != want {
			t.Fatalf("member %d (%+v): got %v, want %v", m, op, got, want)
		}
		if !samplesEqual(dst[m], sref[m]) {
			t.Fatalf("member %d (%+v): batch result not bit-exact with single path", m, op)
		}
	}
}
