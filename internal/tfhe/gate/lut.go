package gate

import (
	"fmt"

	"pytfhe/internal/logic"
	"pytfhe/internal/tfhe/lwe"
	"pytfhe/internal/torus"
)

// Multi-input LUT gates: k boolean ciphertexts (k ≤ logic.MaxLUTArity)
// are combined with the small integer weights of the table's
// logic.LUTPlan, dropping the sum's phase onto one of logic.LUTMsize
// torus cells, and a single programmable bootstrap reads the function
// value off the cell — one bootstrap where a cone of 2-input gates would
// cost several. Only tables logic.SolveLUT separates are evaluable; the
// synthesizer never emits others.

// lutTestVector returns the programmable-bootstrap test function of a
// plan: cell m encrypts +1/8 when the plan marks it true, -1/8 otherwise.
func lutTestVector(plan logic.LUTPlan) func(m int) torus.Torus32 {
	cells := plan.Cells
	return func(m int) torus.Torus32 {
		if cells[m] > 0 {
			return mu18
		}
		return -mu18
	}
}

// LUT evaluates dst = tt(ins[0], …, ins[arity-1]) homomorphically with
// one programmable bootstrap. dst may alias any input. The table must
// have a single-bootstrap plan (logic.SolveLUT); infeasible tables are
// the synthesizer's job to decompose, not the kernel's.
func (e *Engine) LUT(arity int, tt logic.TT, dst *Ciphertext, ins ...*Ciphertext) error {
	if len(ins) != arity {
		return fmt.Errorf("gate: LUT arity %d with %d operands", arity, len(ins))
	}
	plan, ok := logic.SolveLUT(arity, tt)
	if !ok {
		return fmt.Errorf("gate: LUT table %#x has no single-bootstrap plan at arity %d", tt, arity)
	}
	e.tmp.NoiselessTrivial(0)
	for i := 0; i < arity; i++ {
		e.tmp.AddMulTo(plan.Weights[i], ins[i])
	}
	return e.Eval.BootstrapLUT(dst, lutTestVector(plan), logic.LUTMsize, e.tmp)
}

// Op names one bootstrapped operation for the mixed batch path: a classic
// 2-input gate (Arity 0, function in Kind) or a k-input LUT (Arity 2..3,
// function in TT). The field meanings mirror circuit.Gate so executors
// can describe either without importing the IR into this package.
type Op struct {
	Kind  logic.Kind
	TT    logic.TT
	Arity uint8
}

// IsLUT reports whether the op is a multi-input LUT.
func (o Op) IsLUT() bool { return o.Arity != 0 }

// OpBatch evaluates a mixed batch of bootstrapped classic gates and LUT
// gates with one batched blind rotation. Member m reads operands a[m],
// b[m] and — for arity-3 LUTs — c[m]; other members ignore c[m] (which
// may be nil). Classic members must bootstrap, exactly as in BinaryBatch;
// per-member results are bit-exact with Binary / LUT on the same inputs.
func (e *Engine) OpBatch(ops []Op, dst, a, b, c []*Ciphertext) error {
	n := len(ops)
	if len(dst) != n || len(a) != n || len(b) != n || len(c) != n {
		return fmt.Errorf("gate: batch length mismatch: ops=%d dst=%d a=%d b=%d c=%d",
			n, len(dst), len(a), len(b), len(c))
	}
	if n == 0 {
		return nil
	}
	e.growBatch(n)
	hasLUT := false
	for m, op := range ops {
		if op.IsLUT() {
			plan, ok := logic.SolveLUT(int(op.Arity), op.TT)
			if !ok {
				return fmt.Errorf("gate: batch member %d: LUT table %#x has no plan at arity %d", m, op.TT, op.Arity)
			}
			e.btmp[m].NoiselessTrivial(0)
			e.btmp[m].AddMulTo(plan.Weights[0], a[m])
			e.btmp[m].AddMulTo(plan.Weights[1], b[m])
			if op.Arity >= 3 {
				if c[m] == nil {
					return fmt.Errorf("gate: batch member %d: arity-3 LUT with nil third operand", m)
				}
				e.btmp[m].AddMulTo(plan.Weights[2], c[m])
			}
			e.bluts[m] = lutTestVector(plan)
			hasLUT = true
			continue
		}
		if !op.Kind.NeedsBootstrap() {
			return fmt.Errorf("gate: batch member %d: %v does not bootstrap", m, op.Kind)
		}
		pl := plans[op.Kind]
		e.btmp[m].NoiselessTrivial(pl.bias)
		e.btmp[m].AddMulTo(pl.ca, a[m])
		e.btmp[m].AddMulTo(pl.cb, b[m])
		e.bluts[m] = nil
	}
	if !hasLUT {
		return e.batchEval(n).BootstrapBatch(dst, e.bmu[:n], e.btmp[:n])
	}
	return e.batchEval(n).BootstrapMixedBatch(dst, e.bmu[:n], e.bluts[:n], logic.LUTMsize, e.btmp[:n])
}

// growBatch sizes the per-member batch scratch.
func (e *Engine) growBatch(n int) {
	for len(e.btmp) < n {
		e.btmp = append(e.btmp, lwe.NewSample(e.p.LWEDimension))
		e.bmu = append(e.bmu, mu18)
	}
	for len(e.bluts) < n {
		e.bluts = append(e.bluts, nil)
	}
}
