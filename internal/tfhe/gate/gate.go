// Package gate provides the bootstrapped-gate API of PyTFHE: encryption and
// decryption of single bits, and homomorphic evaluation of every gate kind
// in the logic alphabet. Ten two-input gates (AND, NAND, OR, NOR, XOR,
// XNOR, ANDNY, ANDYN, ORNY, ORYN) cost one bootstrap each; NOT, COPY and
// the constants are linear and essentially free; MUX costs two bootstraps
// and one key switch, exactly as in the reference TFHE library.
package gate

import (
	"fmt"

	"pytfhe/internal/logic"
	"pytfhe/internal/params"
	"pytfhe/internal/tfhe/boot"
	"pytfhe/internal/tfhe/lwe"
	"pytfhe/internal/torus"
	"pytfhe/internal/trand"
)

// Ciphertext is an encrypted bit: an LWE sample whose phase is +1/8 for
// true and -1/8 for false.
type Ciphertext = lwe.Sample

// mu18 is the torus constant 1/8, the canonical gate message amplitude.
// (A variable rather than a constant so that unsigned negation is legal.)
var mu18 = torus.Torus32(1) << 29

// NewCiphertext allocates a ciphertext for parameter set p.
func NewCiphertext(p *params.GateParams) *Ciphertext {
	return lwe.NewSample(p.LWEDimension)
}

// Encrypt encrypts one bit under the secret key.
func Encrypt(dst *Ciphertext, bit bool, sk *boot.SecretKey, rng *trand.Source) {
	mu := mu18
	if !bit {
		mu = -mu18
	}
	lwe.Encrypt(dst, mu, sk.Params.LWEStdev, sk.LWE, rng)
}

// Decrypt recovers the bit encrypted in src.
func Decrypt(src *Ciphertext, sk *boot.SecretKey) bool {
	return int32(lwe.Phase(src, sk.LWE)) > 0
}

// Trivial sets dst to the noiseless public constant bit.
func Trivial(dst *Ciphertext, bit bool) {
	mu := mu18
	if !bit {
		mu = -mu18
	}
	dst.NoiselessTrivial(mu)
}

// Engine evaluates homomorphic gates. It owns per-worker scratch and is not
// safe for concurrent use; construct one Engine per goroutine over a shared
// CloudKey.
type Engine struct {
	Eval *boot.Evaluator

	p    *params.GateParams
	tmp  *lwe.Sample // gate linear combination, dimension n
	u1   *lwe.Sample // MUX intermediate, extracted dimension
	u2   *lwe.Sample
	musm *lwe.Sample // MUX sum before final key switch

	// Batched path (BinaryBatch/OpBatch), allocated on first use.
	batch *boot.BatchEvaluator
	btmp  []*lwe.Sample               // per-member linear combinations
	bmu   []torus.Torus32             // per-member bootstrap targets (always ±1/8)
	bluts []func(m int) torus.Torus32 // per-member LUT programs (nil = classic gate)
}

// NewEngine returns a gate engine bound to ck.
func NewEngine(ck *boot.CloudKey) *Engine {
	ext := ck.Params.ExtractedLWEDimension()
	return &Engine{
		Eval: boot.NewEvaluator(ck),
		p:    ck.Params,
		tmp:  lwe.NewSample(ck.Params.LWEDimension),
		u1:   lwe.NewSample(ext),
		u2:   lwe.NewSample(ext),
		musm: lwe.NewSample(ext),
	}
}

// Params returns the engine's parameter set.
func (e *Engine) Params() *params.GateParams { return e.p }

// BootstrapCount returns the number of bootstraps performed so far, on the
// single-gate and batched paths combined (only tracked when profiling is
// enabled on the evaluator).
func (e *Engine) BootstrapCount() int64 {
	n := e.Eval.Prof.Gates
	if e.batch != nil {
		n += e.batch.Prof.Gates
	}
	return n
}

// gatePlan describes the linear combination feeding the bootstrap for one
// two-input gate: tmp = bias + ca*a + cb*b, followed by bootstrap(1/8).
type gatePlan struct {
	bias   torus.Torus32
	ca, cb int32
}

// plans indexes gate plans by logic.Kind. Kinds that do not bootstrap have
// a zero plan and are handled separately.
var plans = func() [logic.NumKinds]gatePlan {
	var p [logic.NumKinds]gatePlan
	q := mu18 // 1/8
	p[logic.NAND] = gatePlan{bias: q, ca: -1, cb: -1}
	p[logic.AND] = gatePlan{bias: -q, ca: 1, cb: 1}
	p[logic.OR] = gatePlan{bias: q, ca: 1, cb: 1}
	p[logic.NOR] = gatePlan{bias: -q, ca: -1, cb: -1}
	p[logic.XOR] = gatePlan{bias: 2 * q, ca: 2, cb: 2}
	p[logic.XNOR] = gatePlan{bias: -(2 * q), ca: -2, cb: -2}
	p[logic.ANDNY] = gatePlan{bias: -q, ca: -1, cb: 1}
	p[logic.ANDYN] = gatePlan{bias: -q, ca: 1, cb: -1}
	p[logic.ORNY] = gatePlan{bias: q, ca: -1, cb: 1}
	p[logic.ORYN] = gatePlan{bias: q, ca: 1, cb: -1}
	return p
}()

// PlanCoefficients exposes the linear-combination coefficients of a
// bootstrapped gate's plan (tmp = bias + ca*a + cb*b): the inputs noise
// analysis needs to bound the pre-bootstrap variance with the exact
// multipliers the engine uses, rather than re-deriving its own table that
// could drift. ok is false for the free kinds (constants, COPY, NOT) and
// out-of-range values, which never feed a bootstrap.
func PlanCoefficients(kind logic.Kind) (ca, cb int32, ok bool) {
	if kind >= logic.NumKinds || !kind.NeedsBootstrap() {
		return 0, 0, false
	}
	pl := plans[kind]
	return pl.ca, pl.cb, true
}

// Binary evaluates dst = kind(a, b) homomorphically. dst may alias a or b.
func (e *Engine) Binary(kind logic.Kind, dst, a, b *Ciphertext) error {
	switch kind {
	case logic.False:
		Trivial(dst, false)
		return nil
	case logic.True:
		Trivial(dst, true)
		return nil
	case logic.COPY:
		dst.Copy(a)
		return nil
	case logic.COPYB:
		dst.Copy(b)
		return nil
	case logic.NOT:
		if dst != a {
			dst.Copy(a)
		}
		dst.Negate()
		return nil
	case logic.NOTB:
		if dst != b {
			dst.Copy(b)
		}
		dst.Negate()
		return nil
	}
	pl := plans[kind]
	e.tmp.NoiselessTrivial(pl.bias)
	e.tmp.AddMulTo(pl.ca, a)
	e.tmp.AddMulTo(pl.cb, b)
	return e.Eval.Bootstrap(dst, mu18, e.tmp)
}

// Not computes dst = ¬a without bootstrapping.
func (e *Engine) Not(dst, a *Ciphertext) { _ = e.Binary(logic.NOT, dst, a, a) }

// Copy computes dst = a.
func (e *Engine) Copy(dst, a *Ciphertext) { _ = e.Binary(logic.COPY, dst, a, a) }

// Constant sets dst to the public bit v.
func (e *Engine) Constant(dst *Ciphertext, v bool) { Trivial(dst, v) }

// Mux computes dst = sel ? a : b using two bootstraps and one key switch,
// following the reference library: u1 = BS(sel AND a), u2 = BS(¬sel AND b),
// dst = KS(u1 + u2 + 1/8).
func (e *Engine) Mux(dst, sel, a, b *Ciphertext) error {
	// u1 ≈ ±1/8 encoding (sel ∧ a)
	e.tmp.NoiselessTrivial(-mu18)
	e.tmp.AddMulTo(1, sel)
	e.tmp.AddMulTo(1, a)
	e.Eval.BootstrapWoKS(e.u1, mu18, e.tmp)

	// u2 ≈ ±1/8 encoding (¬sel ∧ b)
	e.tmp.NoiselessTrivial(-mu18)
	e.tmp.AddMulTo(-1, sel)
	e.tmp.AddMulTo(1, b)
	e.Eval.BootstrapWoKS(e.u2, mu18, e.tmp)

	// dst = u1 + u2 + 1/8, key-switched to the gate key. Exactly one of
	// u1, u2 is +1/8, so the sum is +1/8 (true) or -1/8 (false).
	e.musm.NoiselessTrivial(mu18)
	e.musm.AddTo(e.u1)
	e.musm.AddTo(e.u2)
	if err := e.CK().KS.Apply(dst, e.musm); err != nil {
		return fmt.Errorf("gate: mux key switch: %w", err)
	}
	return nil
}

// CK returns the engine's cloud key.
func (e *Engine) CK() *boot.CloudKey { return e.Eval.CK }
