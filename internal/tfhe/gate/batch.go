package gate

import (
	"fmt"

	"pytfhe/internal/logic"
	"pytfhe/internal/tfhe/boot"
)

// BinaryBatch evaluates dst[m] = kinds[m](a[m], b[m]) for every member with
// one batched bootstrap dispatch: the per-gate linear combinations are formed
// up front and the whole batch runs through boot.BatchEvaluator's
// structure-of-arrays blind rotation, streaming the bootstrapping key once
// for all members. Every kind must bootstrap (logic.Kind.NeedsBootstrap);
// free gates are for the caller to evaluate inline via Binary — batching
// them would waste a kernel slot on a linear operation. Results are
// bit-exact with per-gate Binary on the same inputs.
func (e *Engine) BinaryBatch(kinds []logic.Kind, dst, a, b []*Ciphertext) error {
	n := len(kinds)
	if len(dst) != n || len(a) != n || len(b) != n {
		return fmt.Errorf("gate: batch length mismatch: kinds=%d dst=%d a=%d b=%d",
			n, len(dst), len(a), len(b))
	}
	if n == 0 {
		return nil
	}
	e.growBatch(n)
	for m, kind := range kinds {
		if !kind.NeedsBootstrap() {
			return fmt.Errorf("gate: batch member %d: %v does not bootstrap", m, kind)
		}
		pl := plans[kind]
		e.btmp[m].NoiselessTrivial(pl.bias)
		e.btmp[m].AddMulTo(pl.ca, a[m])
		e.btmp[m].AddMulTo(pl.cb, b[m])
	}
	return e.batchEval(n).BootstrapBatch(dst, e.bmu[:n], e.btmp[:n])
}

// batchEval returns the engine's batch evaluator, creating it on first use
// (engines on the single-gate path never pay for batch scratch) and keeping
// its profiling flag in sync with the single evaluator's.
func (e *Engine) batchEval(capacity int) *boot.BatchEvaluator {
	if e.batch == nil {
		e.batch = boot.NewBatchEvaluator(e.CK(), capacity)
	}
	e.batch.Profile = e.Eval.Profile
	return e.batch
}

// BatchProf returns the accumulated batch-evaluator profile (zero if no
// batch has run). Combined with Eval.Prof it covers every bootstrap the
// engine performed.
func (e *Engine) BatchProf() boot.Profile {
	if e.batch == nil {
		return boot.Profile{}
	}
	return e.batch.Prof
}
