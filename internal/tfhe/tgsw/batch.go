package tgsw

import (
	"pytfhe/internal/tfhe/tlwe"
	"pytfhe/internal/torus"
)

// HalfSample is a TGSW sample with every row polynomial in the half-complex
// domain (N/2 informative points instead of N conjugate-redundant ones; see
// torus/half.go). It is the bootstrapping-key representation of the batched
// blind-rotate engine: relative to FourierSample it halves both the memory
// the key streams through the cache and the flops of every pointwise
// multiply-accumulate.
type HalfSample struct {
	Rows   [][]*torus.HalfPoly
	K      int
	Params Params
}

// Half converts the sample to the half-complex representation. The
// Fourier-domain rows encode torus polynomials exactly, so the conversion
// inverse-transforms each row (recovering the exact coefficients) and
// re-folds it at half size; the result is independent of float rounding.
func (s *FourierSample) Half(proc *torus.Processor) *HalfSample {
	h := &HalfSample{K: s.K, Params: s.Params, Rows: make([][]*torus.HalfPoly, len(s.Rows))}
	n := proc.N()
	coef := torus.NewTorusPoly(n)
	for u, row := range s.Rows {
		h.Rows[u] = make([]*torus.HalfPoly, len(row))
		for c, fp := range row {
			proc.FourierToTorus(coef, fp)
			hp := torus.NewHalfPoly(n / 2)
			proc.HalfFoldTorus(hp, coef)
			h.Rows[u][c] = hp
		}
	}
	return h
}

// BatchScratch holds the temporaries for batched CMux rotations: instead of
// decomposing and transforming one accumulator at a time, a whole batch of B
// accumulators is decomposed first and then walked through the Fourier
// pipeline against a single TGSW sample. The bootstrap key row BK[i] is
// thereby streamed through the cache once per batch instead of once per
// gate, and the pair-packed forward transforms are paired *across* batch
// members, so an odd decomposition length leaves at most one unpaired
// transform per batch rather than one per gate.
//
// Like Scratch, a BatchScratch (and its Processor) must not be shared
// between goroutines.
type BatchScratch struct {
	Proc *torus.Processor

	n, k, levels int
	cap          int

	decomp []*torus.IntPoly     // cap * (k+1)*levels digit polys, member-major
	facc   []*torus.FourierPoly // cap * (k+1) Fourier accumulators, member-major
	srcVar []float64            // per-member diff variance
	fdec   *torus.FourierPoly
	fdec2  *torus.FourierPoly
	diff   *tlwe.Sample

	// Half-complex engine temporaries (CMuxRotateBatchHalf): one member's
	// worth of digits and spectra, reused across the batch.
	hspec1 *torus.HalfPoly
	hspec2 *torus.HalfPoly
	hfacc  []*torus.HalfPoly // k+1 accumulators
}

// NewBatchScratch allocates batch scratch for ring degree n, k masks and
// gadget parameters p, sized for batches of up to capacity members. The
// scratch grows automatically if a larger batch is presented.
func NewBatchScratch(n, k int, p Params, capacity int) *BatchScratch {
	if capacity < 1 {
		capacity = 1
	}
	bs := &BatchScratch{
		Proc:   torus.NewProcessor(n),
		n:      n,
		k:      k,
		levels: p.Levels,
		fdec:   torus.NewFourierPoly(n),
		fdec2:  torus.NewFourierPoly(n),
		diff:   tlwe.NewSample(n, k),
		hspec1: torus.NewHalfPoly(n / 2),
		hspec2: torus.NewHalfPoly(n / 2),
		hfacc:  make([]*torus.HalfPoly, k+1),
	}
	for i := range bs.hfacc {
		bs.hfacc[i] = torus.NewHalfPoly(n / 2)
	}
	bs.grow(capacity)
	return bs
}

// Cap returns the current batch capacity.
func (bs *BatchScratch) Cap() int { return bs.cap }

func (bs *BatchScratch) grow(capacity int) {
	if capacity <= bs.cap {
		return
	}
	d := (bs.k + 1) * bs.levels
	for len(bs.decomp) < capacity*d {
		bs.decomp = append(bs.decomp, torus.NewIntPoly(bs.n))
	}
	for len(bs.facc) < capacity*(bs.k+1) {
		bs.facc = append(bs.facc, torus.NewFourierPoly(bs.n))
	}
	for len(bs.srcVar) < capacity {
		bs.srcVar = append(bs.srcVar, 0)
	}
	bs.cap = capacity
}

// CMuxRotateBatch performs the blind-rotation step
// accs[m] += g ⊡ ((X^as[m] - 1) · accs[m]) for every batch member m against
// the single Fourier-domain TGSW sample g. Each rotation is bit-exact with
// Scratch.CMuxRotateInPlace on the same inputs: the FFT-domain products
// round back to the exact integer convolution results (magnitudes stay far
// below 2^52), so pairing transforms across members does not perturb any
// output coefficient.
//
// All as[m] should be nonzero (zero rotations are identity CMuxes; callers
// skip them before batching). len(as) must equal len(accs).
func (bs *BatchScratch) CMuxRotateBatch(accs []*tlwe.Sample, g *FourierSample, as []int) {
	b := len(accs)
	if b == 0 {
		return
	}
	if len(as) != b {
		panic("tgsw: CMuxRotateBatch rotation count mismatch")
	}
	bs.grow(b)
	d := (g.K + 1) * g.Params.Levels
	kk := g.K + 1

	// Phase 1: rotate-and-diff each accumulator and gadget-decompose it into
	// its slab of the shared digit arena. The single diff sample is reused —
	// its digits are consumed before the next member overwrites it.
	for m, acc := range accs {
		bs.diff.MulByXaiMinusOne(as[m], acc)
		DecomposeTLWE(bs.decomp[m*d:(m+1)*d], bs.diff, g.Params)
		bs.srcVar[m] = bs.diff.Variance
	}

	for _, f := range bs.facc[:b*kk] {
		f.Clear()
	}

	// Phase 2: forward transforms pair-packed across the entire batch. The
	// global walk pairs digit u of member m with the next digit in
	// member-major order, straddling member boundaries, so at most one
	// single (unpaired) transform remains per batch. Each spectrum is
	// multiply-accumulated against its BK row immediately, while the row is
	// hot in cache for every member of the batch.
	total := b * d
	u := 0
	for ; u+1 < total; u += 2 {
		bs.Proc.IntPairToFourier(bs.fdec, bs.fdec2, bs.decomp[u], bs.decomp[u+1])
		bs.mulAccRow(u, bs.fdec, g, d, kk)
		bs.mulAccRow(u+1, bs.fdec2, g, d, kk)
	}
	if u < total {
		bs.Proc.IntToFourier(bs.fdec, bs.decomp[u])
		bs.mulAccRow(u, bs.fdec, g, d, kk)
	}

	// Phase 3: inverse transforms, again pair-packed across the batch. The
	// (k+1) result polynomials of member m occupy facc[m*kk .. m*kk+kk-1]
	// and add into accs[m].A in order.
	totalF := b * kk
	c := 0
	for ; c+1 < totalF; c += 2 {
		dstA := accs[c/kk].A[c%kk]
		dstB := accs[(c+1)/kk].A[(c+1)%kk]
		bs.Proc.AddFourierPairToTorus(dstA, dstB, bs.facc[c], bs.facc[c+1])
	}
	if c < totalF {
		bs.Proc.AddFourierToTorus(accs[c/kk].A[c%kk], bs.facc[c])
	}

	for m, acc := range accs {
		acc.Variance += bs.srcVar[m] // coarse tracking, as in ExternalProductAdd
	}
}

// CMuxRotateBatchHalf is CMuxRotateBatch on the half-complex engine: the
// same rotations against the half-domain bootstrapping key g, processed
// member by member so the caller's key-index-outer loop keeps g's rows hot
// in cache across the whole batch. Each digit polynomial gets its own
// half-size transform (no pair packing is needed — the representation
// already carries two real coefficients per complex point), and products
// accumulate through the fused MulAccPairTo pass. Bit-exact with
// Scratch.CMuxRotateInPlace for the reasons documented on CMuxRotateBatch.
func (bs *BatchScratch) CMuxRotateBatchHalf(accs []*tlwe.Sample, g *HalfSample, as []int) {
	b := len(accs)
	if b == 0 {
		return
	}
	if len(as) != b {
		panic("tgsw: CMuxRotateBatchHalf rotation count mismatch")
	}
	d := (g.K + 1) * g.Params.Levels
	kk := g.K + 1
	if bs.cap < 1 || len(bs.decomp) < d {
		bs.grow(1)
	}
	for m, acc := range accs {
		bs.diff.MulByXaiMinusOne(as[m], acc)
		srcVar := bs.diff.Variance
		DecomposeTLWE(bs.decomp[:d], bs.diff, g.Params)
		for c := 0; c < kk; c++ {
			bs.hfacc[c].Clear()
		}
		u := 0
		for ; u+1 < d; u += 2 {
			bs.Proc.HalfFoldInt(bs.hspec1, bs.decomp[u])
			bs.Proc.HalfFoldInt(bs.hspec2, bs.decomp[u+1])
			rowA, rowB := g.Rows[u], g.Rows[u+1]
			for c := 0; c < kk; c++ {
				bs.hfacc[c].MulAccPairTo(bs.hspec1, rowA[c], bs.hspec2, rowB[c])
			}
		}
		if u < d {
			bs.Proc.HalfFoldInt(bs.hspec1, bs.decomp[u])
			row := g.Rows[u]
			for c := 0; c < kk; c++ {
				bs.hfacc[c].MulAccTo(bs.hspec1, row[c])
			}
		}
		for c := 0; c < kk; c++ {
			bs.Proc.AddHalfToTorus(acc.A[c], bs.hfacc[c])
		}
		acc.Variance += srcVar
	}
}

// mulAccRow accumulates the spectrum of global digit index idx (member
// idx/d, row idx%d) into that member's Fourier accumulators against the
// matching BK row.
func (bs *BatchScratch) mulAccRow(idx int, spec *torus.FourierPoly, g *FourierSample, d, kk int) {
	row := g.Rows[idx%d]
	base := (idx / d) * kk
	for c := 0; c < kk; c++ {
		bs.facc[base+c].MulAccTo(spec, row[c])
	}
}
