package tgsw

import (
	"math"
	"testing"

	"pytfhe/internal/tfhe/tlwe"
	"pytfhe/internal/torus"
	"pytfhe/internal/trand"
)

const (
	testN = 256
	testK = 1
)

var testParams = Params{Levels: 3, BaseLog: 7}

func TestDecomposeRecompose(t *testing.T) {
	rng := trand.NewSeeded([]byte("tgsw-decomp"))
	src := torus.NewTorusPoly(testN)
	for i := range src.Coefs {
		src.Coefs[i] = rng.Torus32()
	}
	dst := make([]*torus.IntPoly, testParams.Levels)
	for i := range dst {
		dst[i] = torus.NewIntPoly(testN)
	}
	DecomposePoly(dst, src, testParams)

	halfBase := int32(1) << (testParams.BaseLog - 1)
	// Recompose: sum_j dst[j] * 2^(32-(j+1)*BaseLog) truncates src's low
	// bits, so the error is one-sided and below 1/Bg^l in magnitude.
	for i := range src.Coefs {
		var recomposed uint32
		for j := 0; j < testParams.Levels; j++ {
			d := dst[j].Coefs[i]
			if d < -halfBase || d >= halfBase {
				t.Fatalf("digit out of range: %d", d)
			}
			recomposed += uint32(d) << (32 - uint(j+1)*uint(testParams.BaseLog))
		}
		diff := int32(recomposed - src.Coefs[i])
		limit := int32(1) << (32 - uint(testParams.Levels)*uint(testParams.BaseLog))
		if diff > 0 || diff <= -limit {
			t.Fatalf("coef %d: recomposition error %d outside (-%d, 0]", i, diff, limit)
		}
	}
}

func TestExternalProductSelectsMessage(t *testing.T) {
	rng := trand.NewSeeded([]byte("tgsw-extprod"))
	key := NewKey(testN, testK, math.Pow(2, -30), testParams, rng)
	const msize = 8

	for _, bit := range []int32{0, 1} {
		g := NewSample(testN, testK, testParams)
		Encrypt(g, bit, key.TLWE.Stdev, key, rng)
		proc := torus.NewProcessor(testN)
		fg := g.ToFourier(proc)

		mu := torus.NewTorusPoly(testN)
		mu.Coefs[0] = torus.ModSwitchToTorus32(3, msize)
		mu.Coefs[7] = torus.ModSwitchToTorus32(5, msize)
		c := tlwe.NewSample(testN, testK)
		tlwe.Encrypt(c, mu, key.TLWE.Stdev, key.TLWE, rng)

		acc := tlwe.NewSample(testN, testK)
		sc := NewScratch(testN, testK, testParams)
		sc.ExternalProductAdd(acc, fg, c)

		phase := torus.NewTorusPoly(testN)
		tlwe.Phase(phase, acc, key.TLWE)
		want0, want7 := int32(0), int32(0)
		if bit == 1 {
			want0, want7 = 3, 5
		}
		if got := torus.ModSwitchFromTorus32(phase.Coefs[0], msize); got != want0 {
			t.Fatalf("bit=%d coef0 = %d, want %d", bit, got, want0)
		}
		if got := torus.ModSwitchFromTorus32(phase.Coefs[7], msize); got != want7 {
			t.Fatalf("bit=%d coef7 = %d, want %d", bit, got, want7)
		}
	}
}

func TestCMux(t *testing.T) {
	rng := trand.NewSeeded([]byte("tgsw-cmux"))
	key := NewKey(testN, testK, math.Pow(2, -30), testParams, rng)
	proc := torus.NewProcessor(testN)
	const msize = 8

	mu1 := torus.NewTorusPoly(testN)
	mu0 := torus.NewTorusPoly(testN)
	mu1.Coefs[0] = torus.ModSwitchToTorus32(6, msize)
	mu0.Coefs[0] = torus.ModSwitchToTorus32(2, msize)
	c1 := tlwe.NewSample(testN, testK)
	c0 := tlwe.NewSample(testN, testK)
	tlwe.Encrypt(c1, mu1, key.TLWE.Stdev, key.TLWE, rng)
	tlwe.Encrypt(c0, mu0, key.TLWE.Stdev, key.TLWE, rng)

	for _, bit := range []int32{0, 1} {
		g := NewSample(testN, testK, testParams)
		Encrypt(g, bit, key.TLWE.Stdev, key, rng)
		fg := g.ToFourier(proc)

		sc := NewScratch(testN, testK, testParams)
		dst := tlwe.NewSample(testN, testK)
		sc.CMux(dst, fg, c1, c0)

		phase := torus.NewTorusPoly(testN)
		tlwe.Phase(phase, dst, key.TLWE)
		want := int32(2)
		if bit == 1 {
			want = 6
		}
		if got := torus.ModSwitchFromTorus32(phase.Coefs[0], msize); got != want {
			t.Fatalf("cmux(bit=%d) = %d, want %d", bit, got, want)
		}
	}
}

func TestCMuxRotate(t *testing.T) {
	rng := trand.NewSeeded([]byte("tgsw-rotate"))
	key := NewKey(testN, testK, math.Pow(2, -30), testParams, rng)
	proc := torus.NewProcessor(testN)
	const msize = 8
	const shift = 11

	mu := torus.NewTorusPoly(testN)
	mu.Coefs[0] = torus.ModSwitchToTorus32(4, msize)

	for _, bit := range []int32{0, 1} {
		g := NewSample(testN, testK, testParams)
		Encrypt(g, bit, key.TLWE.Stdev, key, rng)
		fg := g.ToFourier(proc)

		acc := tlwe.NewSample(testN, testK)
		tlwe.Encrypt(acc, mu, key.TLWE.Stdev, key.TLWE, rng)
		sc := NewScratch(testN, testK, testParams)
		sc.CMuxRotateInPlace(acc, fg, shift)

		phase := torus.NewTorusPoly(testN)
		tlwe.Phase(phase, acc, key.TLWE)
		wantIdx := 0
		if bit == 1 {
			wantIdx = shift
		}
		if got := torus.ModSwitchFromTorus32(phase.Coefs[wantIdx], msize); got != 4 {
			t.Fatalf("bit=%d: message not found at coef %d (got %d)", bit, wantIdx, got)
		}
	}
}

func TestOffsetMatchesDefinition(t *testing.T) {
	p := Params{Levels: 2, BaseLog: 8}
	// offset = sum_j (Bg/2) * 2^(32 - j*Bgbit) for j=1..l
	want := uint32(128)<<24 + uint32(128)<<16
	if got := p.Offset(); got != want {
		t.Fatalf("offset = %#x, want %#x", got, want)
	}
}
