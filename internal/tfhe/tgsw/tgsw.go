// Package tgsw implements TGSW ciphertexts — the gadget-decomposed
// ring-GSW samples of the TFHE scheme — together with the external product
// TGSW ⊡ TLWE and the CMux operation that blind rotation is built from.
//
// The hot path keeps TGSW samples in the Fourier domain (FourierSample):
// the bootstrapping key is transformed once at key-generation time, so each
// external product costs only the forward transforms of the decomposed
// accumulator, pointwise multiply-accumulates, and the inverse transforms.
package tgsw

import (
	"pytfhe/internal/tfhe/tlwe"
	"pytfhe/internal/torus"
	"pytfhe/internal/trand"
)

// Params carries the gadget decomposition geometry.
type Params struct {
	Levels  int // l
	BaseLog int // Bgbit
}

// Base returns the decomposition base Bg.
func (p Params) Base() int32 { return int32(1) << p.BaseLog }

// Offset returns the decomposition offset added to every torus coefficient
// so that the digit extraction below yields balanced digits in
// [-Bg/2, Bg/2).
func (p Params) Offset() uint32 {
	var offset uint32
	halfBase := uint32(1) << (p.BaseLog - 1)
	for j := 1; j <= p.Levels; j++ {
		offset += halfBase << (32 - uint(j)*uint(p.BaseLog))
	}
	return offset
}

// Key wraps a TLWE key for TGSW encryption.
type Key struct {
	TLWE   *tlwe.Key
	Params Params
}

// NewKey samples a fresh TGSW key over a ring of degree n with k masks.
func NewKey(n, k int, stdev float64, p Params, rng *trand.Source) *Key {
	return &Key{TLWE: tlwe.NewKey(n, k, stdev, rng), Params: p}
}

// Sample is a TGSW ciphertext: (k+1)*l TLWE rows arranged in k+1 blocks of
// l levels. Block b, level j is an encryption of m * s_b / Bg^(j+1) (with
// s_k = -1 handled by the body block).
type Sample struct {
	Rows   []*tlwe.Sample // length (k+1)*l
	K      int
	Params Params
}

// NewSample returns a zero TGSW sample for ring degree n with k masks.
func NewSample(n, k int, p Params) *Sample {
	s := &Sample{K: k, Params: p, Rows: make([]*tlwe.Sample, (k+1)*p.Levels)}
	for i := range s.Rows {
		s.Rows[i] = tlwe.NewSample(n, k)
	}
	return s
}

// Encrypt encrypts the small integer message m (typically a key bit) into
// dst under key: every row is a fresh zero encryption, then m*H is added on
// the gadget diagonal.
func Encrypt(dst *Sample, m int32, alpha float64, key *Key, rng *trand.Source) {
	l := key.Params.Levels
	for _, row := range dst.Rows {
		tlwe.EncryptZero(row, alpha, key.TLWE, rng)
	}
	for bloc := 0; bloc <= dst.K; bloc++ {
		for j := 0; j < l; j++ {
			// h_j = 1 / Bg^(j+1) on the torus.
			h := uint32(1) << (32 - uint(j+1)*uint(key.Params.BaseLog))
			row := dst.Rows[bloc*l+j]
			row.A[bloc].Coefs[0] += uint32(m) * h
		}
	}
}

// DecomposeTLWE gadget-decomposes every polynomial of the TLWE sample src
// into l integer polynomials with balanced digits. dst must hold
// (k+1)*Levels integer polynomials; block c occupies dst[c*l .. c*l+l-1].
func DecomposeTLWE(dst []*torus.IntPoly, src *tlwe.Sample, p Params) {
	l := p.Levels
	for c, poly := range src.A {
		DecomposePoly(dst[c*l:(c+1)*l], poly, p)
	}
}

// DecomposePoly gadget-decomposes one torus polynomial into l balanced
// digit polynomials: sum_j dst[j]/Bg^(j+1) ≈ src with error below 1/Bg^l.
func DecomposePoly(dst []*torus.IntPoly, src *torus.TorusPoly, p Params) {
	offset := p.Offset()
	mask := uint32(1)<<p.BaseLog - 1
	halfBase := int32(1) << (p.BaseLog - 1)
	for i, c := range src.Coefs {
		v := c + offset
		for j := 0; j < p.Levels; j++ {
			shift := 32 - uint(j+1)*uint(p.BaseLog)
			dst[j].Coefs[i] = int32((v>>shift)&mask) - halfBase
		}
	}
}

// FourierSample is a TGSW sample with every row polynomial held in the
// Fourier domain. It is the representation used for bootstrapping keys.
type FourierSample struct {
	// Rows[u][c] is the Fourier transform of polynomial c of TLWE row u.
	Rows   [][]*torus.FourierPoly
	K      int
	Params Params
}

// ToFourier transforms a coefficient-domain TGSW sample into the Fourier
// domain using proc.
func (s *Sample) ToFourier(proc *torus.Processor) *FourierSample {
	f := &FourierSample{K: s.K, Params: s.Params, Rows: make([][]*torus.FourierPoly, len(s.Rows))}
	for u, row := range s.Rows {
		f.Rows[u] = make([]*torus.FourierPoly, s.K+1)
		for c, poly := range row.A {
			fp := torus.NewFourierPoly(poly.N())
			proc.TorusToFourier(fp, poly)
			f.Rows[u][c] = fp
		}
	}
	return f
}

// Scratch holds the per-worker temporaries for external products so the hot
// loop performs no allocation. A Scratch (and its Processor) must not be
// shared between goroutines.
type Scratch struct {
	Proc   *torus.Processor
	decomp []*torus.IntPoly
	fdec   *torus.FourierPoly
	fdec2  *torus.FourierPoly
	facc   []*torus.FourierPoly
	diff   *tlwe.Sample
}

// NewScratch allocates scratch space for ring degree n, k masks and gadget
// parameters p.
func NewScratch(n, k int, p Params) *Scratch {
	s := &Scratch{
		Proc:   torus.NewProcessor(n),
		decomp: make([]*torus.IntPoly, (k+1)*p.Levels),
		fdec:   torus.NewFourierPoly(n),
		fdec2:  torus.NewFourierPoly(n),
		facc:   make([]*torus.FourierPoly, k+1),
		diff:   tlwe.NewSample(n, k),
	}
	for i := range s.decomp {
		s.decomp[i] = torus.NewIntPoly(n)
	}
	for i := range s.facc {
		s.facc[i] = torus.NewFourierPoly(n)
	}
	return s
}

// ExternalProductAdd computes acc += g ⊡ src, where g is a Fourier-domain
// TGSW sample and src a coefficient-domain TLWE sample. acc and src may not
// alias. Forward and inverse transforms run pair-packed (two real
// polynomials per complex FFT), halving the FFT count of the hot loop.
func (sc *Scratch) ExternalProductAdd(acc *tlwe.Sample, g *FourierSample, src *tlwe.Sample) {
	DecomposeTLWE(sc.decomp, src, g.Params)
	for c := range sc.facc {
		sc.facc[c].Clear()
	}
	u := 0
	for ; u+1 < len(sc.decomp); u += 2 {
		sc.Proc.IntPairToFourier(sc.fdec, sc.fdec2, sc.decomp[u], sc.decomp[u+1])
		rowA, rowB := g.Rows[u], g.Rows[u+1]
		for c := range sc.facc {
			sc.facc[c].MulAccTo(sc.fdec, rowA[c])
			sc.facc[c].MulAccTo(sc.fdec2, rowB[c])
		}
	}
	if u < len(sc.decomp) { // odd (k+1)*l: one leftover single transform
		sc.Proc.IntToFourier(sc.fdec, sc.decomp[u])
		row := g.Rows[u]
		for c := range sc.facc {
			sc.facc[c].MulAccTo(sc.fdec, row[c])
		}
	}
	c := 0
	for ; c+1 < len(sc.facc); c += 2 {
		sc.Proc.AddFourierPairToTorus(acc.A[c], acc.A[c+1], sc.facc[c], sc.facc[c+1])
	}
	if c < len(sc.facc) {
		sc.Proc.AddFourierToTorus(acc.A[c], sc.facc[c])
	}
	acc.Variance += src.Variance // coarse tracking; exact analysis in docs
}

// CMuxRotateInPlace performs the blind-rotation step
// acc += g ⊡ ((X^a - 1) · acc), which equals CMux(g, X^a·acc, acc) when g
// encrypts a bit: the accumulator is multiplied by X^a iff the encrypted
// bit is one.
func (sc *Scratch) CMuxRotateInPlace(acc *tlwe.Sample, g *FourierSample, a int) {
	sc.diff.MulByXaiMinusOne(a, acc)
	sc.ExternalProductAdd(acc, g, sc.diff)
}

// CMux computes dst = c0 + g ⊡ (c1 - c0): dst decrypts to c1's message when
// g encrypts 1 and to c0's when g encrypts 0. dst may alias c0 but not c1.
func (sc *Scratch) CMux(dst *tlwe.Sample, g *FourierSample, c1, c0 *tlwe.Sample) {
	sc.diff.Copy(c1)
	sc.diff.SubFrom(c0)
	if dst != c0 {
		dst.Copy(c0)
	}
	sc.ExternalProductAdd(dst, g, sc.diff)
}
