package tgsw

import (
	"fmt"
	"math"
	"testing"

	"pytfhe/internal/tfhe/tlwe"
	"pytfhe/internal/torus"
	"pytfhe/internal/trand"
)

// TestCMuxRotateBatchMatchesSingle verifies that the batched rotation is
// bit-exact with per-member CMuxRotateInPlace across batch sizes, including
// sizes that leave odd leftovers in the cross-member pair walk.
func TestCMuxRotateBatchMatchesSingle(t *testing.T) {
	rng := trand.NewSeeded([]byte("tgsw-batch"))
	key := NewKey(testN, testK, math.Pow(2, -30), testParams, rng)
	proc := torus.NewProcessor(testN)

	g := NewSample(testN, testK, testParams)
	Encrypt(g, 1, key.TLWE.Stdev, key, rng)
	fg := g.ToFourier(proc)

	sc := NewScratch(testN, testK, testParams)
	bs := NewBatchScratch(testN, testK, testParams, 2) // force growth past 2
	hg := fg.Half(torus.NewProcessor(testN))

	for _, b := range []int{1, 2, 3, 7, 16} {
		t.Run(fmt.Sprintf("B%d", b), func(t *testing.T) {
			single := make([]*tlwe.Sample, b)
			batched := make([]*tlwe.Sample, b)
			half := make([]*tlwe.Sample, b)
			as := make([]int, b)
			for m := 0; m < b; m++ {
				mu := torus.NewTorusPoly(testN)
				for i := range mu.Coefs {
					mu.Coefs[i] = rng.Torus32()
				}
				single[m] = tlwe.NewSample(testN, testK)
				tlwe.Encrypt(single[m], mu, key.TLWE.Stdev, key.TLWE, rng)
				batched[m] = tlwe.NewSample(testN, testK)
				batched[m].Copy(single[m])
				half[m] = tlwe.NewSample(testN, testK)
				half[m].Copy(single[m])
				as[m] = 1 + int(rng.Torus32()%uint32(2*testN-1)) // in [1, 2N)
			}

			for m := 0; m < b; m++ {
				sc.CMuxRotateInPlace(single[m], fg, as[m])
			}
			bs.CMuxRotateBatch(batched, fg, as)
			bs.CMuxRotateBatchHalf(half, hg, as)

			for m := 0; m < b; m++ {
				for c := range single[m].A {
					for j, want := range single[m].A[c].Coefs {
						if got := batched[m].A[c].Coefs[j]; got != want {
							t.Fatalf("member %d poly %d coef %d: batch %#x, single %#x", m, c, j, got, want)
						}
						if got := half[m].A[c].Coefs[j]; got != want {
							t.Fatalf("member %d poly %d coef %d: half %#x, single %#x", m, c, j, got, want)
						}
					}
				}
				if single[m].Variance != batched[m].Variance || single[m].Variance != half[m].Variance {
					t.Fatalf("member %d: variance batch %g half %g, single %g",
						m, batched[m].Variance, half[m].Variance, single[m].Variance)
				}
			}
		})
	}
}

func benchBatchSetup(b *testing.B) (*FourierSample, *trand.Source, *tlwe.Key) {
	b.Helper()
	rng := trand.NewSeeded([]byte("tgsw-bench"))
	key := NewKey(testN, testK, math.Pow(2, -30), testParams, rng)
	g := NewSample(testN, testK, testParams)
	Encrypt(g, 1, key.TLWE.Stdev, key, rng)
	return g.ToFourier(torus.NewProcessor(testN)), rng, key.TLWE
}

func BenchmarkKernelExternalProductAdd(b *testing.B) {
	fg, rng, tk := benchBatchSetup(b)
	src := tlwe.NewSample(testN, testK)
	mu := torus.NewTorusPoly(testN)
	for i := range mu.Coefs {
		mu.Coefs[i] = rng.Torus32()
	}
	tlwe.Encrypt(src, mu, tk.Stdev, tk, rng)
	acc := tlwe.NewSample(testN, testK)
	sc := NewScratch(testN, testK, testParams)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sc.ExternalProductAdd(acc, fg, src)
	}
}

// BenchmarkKernelCMuxRotate compares the per-rotation cost of the single
// path against the batched path at growing batch sizes; the per-op metric is
// one CMux rotation in both cases.
func BenchmarkKernelCMuxRotate(b *testing.B) {
	fg, rng, tk := benchBatchSetup(b)
	mkAcc := func() *tlwe.Sample {
		mu := torus.NewTorusPoly(testN)
		for i := range mu.Coefs {
			mu.Coefs[i] = rng.Torus32()
		}
		s := tlwe.NewSample(testN, testK)
		tlwe.Encrypt(s, mu, tk.Stdev, tk, rng)
		return s
	}

	b.Run("single", func(b *testing.B) {
		sc := NewScratch(testN, testK, testParams)
		acc := mkAcc()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			sc.CMuxRotateInPlace(acc, fg, 1+i%(2*testN-1))
		}
	})
	for _, size := range []int{4, 16, 64} {
		b.Run(fmt.Sprintf("batch-%d", size), func(b *testing.B) {
			bs := NewBatchScratch(testN, testK, testParams, size)
			accs := make([]*tlwe.Sample, size)
			as := make([]int, size)
			for m := range accs {
				accs[m] = mkAcc()
				as[m] = 1 + m%(2*testN-1)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i += size {
				bs.CMuxRotateBatch(accs, fg, as)
			}
		})
	}
	for _, size := range []int{4, 16, 64} {
		b.Run(fmt.Sprintf("half-%d", size), func(b *testing.B) {
			hg := fg.Half(torus.NewProcessor(testN))
			bs := NewBatchScratch(testN, testK, testParams, size)
			accs := make([]*tlwe.Sample, size)
			as := make([]int, size)
			for m := range accs {
				accs[m] = mkAcc()
				as[m] = 1 + m%(2*testN-1)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i += size {
				bs.CMuxRotateBatchHalf(accs, hg, as)
			}
		})
	}
}
