// Package lwe implements scalar Learning-With-Errors ciphertexts over the
// discretized torus: key generation, symmetric encryption and decryption,
// the homomorphic linear operations TFHE gates are built from, and the
// key-switching procedure that maps extracted (N·k)-dimensional samples
// back to the n-dimensional gate key.
package lwe

import (
	"fmt"

	"pytfhe/internal/torus"
	"pytfhe/internal/trand"
)

// Key is an LWE secret key: a vector of n uniformly random bits.
type Key struct {
	N     int
	Bits  []int32 // each in {0,1}
	Stdev float64 // fresh-encryption noise level associated with this key
}

// NewKey samples a fresh binary LWE key of dimension n.
func NewKey(n int, stdev float64, rng *trand.Source) *Key {
	k := &Key{N: n, Bits: make([]int32, n), Stdev: stdev}
	for i := range k.Bits {
		k.Bits[i] = rng.Bit()
	}
	return k
}

// Sample is an LWE ciphertext (a, b) with b = <a, s> + message + noise.
// Variance tracks the accumulated noise variance for diagnostics; it plays
// no role in correctness.
type Sample struct {
	A        []torus.Torus32
	B        torus.Torus32
	Variance float64
}

// NewSample returns a zero LWE sample of dimension n.
func NewSample(n int) *Sample {
	return &Sample{A: make([]torus.Torus32, n)}
}

// Dimension returns the mask length n of the sample.
func (s *Sample) Dimension() int { return len(s.A) }

// Copy copies src into s. Dimensions must match.
func (s *Sample) Copy(src *Sample) {
	copy(s.A, src.A)
	s.B = src.B
	s.Variance = src.Variance
}

// Clear resets s to the trivial encryption of zero.
func (s *Sample) Clear() {
	for i := range s.A {
		s.A[i] = 0
	}
	s.B = 0
	s.Variance = 0
}

// NoiselessTrivial sets s to the trivial (insecure, noiseless) sample
// (0, mu). Trivial samples encode public constants.
func (s *Sample) NoiselessTrivial(mu torus.Torus32) {
	for i := range s.A {
		s.A[i] = 0
	}
	s.B = mu
	s.Variance = 0
}

// Encrypt encrypts the torus message mu under key k with Gaussian noise of
// standard deviation alpha.
func Encrypt(dst *Sample, mu torus.Torus32, alpha float64, k *Key, rng *trand.Source) {
	dst.B = rng.GaussianTorus32(mu, alpha)
	for i := range dst.A {
		dst.A[i] = rng.Torus32()
		dst.B += dst.A[i] * uint32(k.Bits[i])
	}
	dst.Variance = alpha * alpha
}

// Phase computes the raw phase b - <a, s> of the sample under key k.
func Phase(s *Sample, k *Key) torus.Torus32 {
	phase := s.B
	for i, a := range s.A {
		phase -= a * uint32(k.Bits[i])
	}
	return phase
}

// Decrypt decrypts the sample to the nearest message in a space of msize
// equally spaced messages.
func Decrypt(s *Sample, k *Key, msize int32) int32 {
	return torus.ModSwitchFromTorus32(Phase(s, k), msize)
}

// AddTo computes s += src.
func (s *Sample) AddTo(src *Sample) {
	for i, a := range src.A {
		s.A[i] += a
	}
	s.B += src.B
	s.Variance += src.Variance
}

// SubFrom computes s -= src.
func (s *Sample) SubFrom(src *Sample) {
	for i, a := range src.A {
		s.A[i] -= a
	}
	s.B -= src.B
	s.Variance += src.Variance
}

// AddMulTo computes s += p*src for a plain integer p.
func (s *Sample) AddMulTo(p int32, src *Sample) {
	pp := uint32(p)
	for i, a := range src.A {
		s.A[i] += pp * a
	}
	s.B += pp * src.B
	s.Variance += float64(p) * float64(p) * src.Variance
}

// Negate computes s = -s.
func (s *Sample) Negate() {
	for i := range s.A {
		s.A[i] = -s.A[i]
	}
	s.B = -s.B
}

// SwitchKey holds a key-switching key from an input key of dimension nIn to
// an output key of dimension nOut: for every input key bit i, digit position
// j and digit value v, an encryption of v * s_i / base^(j+1) under the
// output key. The v = 0 entries are stored as explicit zero samples so the
// hot loop is branch-free.
type SwitchKey struct {
	NIn     int
	NOut    int
	Levels  int // t
	BaseLog int // basebit
	// Rows[i][j][v] is an LWE sample under the output key. Exported so the
	// cluster backend can ship switch keys over the wire with encoding/gob.
	Rows [][][]*Sample
}

// NewSwitchKey builds a key-switching key from inKey to outKey with the
// given decomposition (t digits of basebit bits each) and noise alpha.
func NewSwitchKey(inKey, outKey *Key, levels, baseLog int, alpha float64, rng *trand.Source) *SwitchKey {
	base := int32(1) << baseLog
	ks := &SwitchKey{
		NIn:     inKey.N,
		NOut:    outKey.N,
		Levels:  levels,
		BaseLog: baseLog,
		Rows:    make([][][]*Sample, inKey.N),
	}
	for i := 0; i < inKey.N; i++ {
		ks.Rows[i] = make([][]*Sample, levels)
		for j := 0; j < levels; j++ {
			ks.Rows[i][j] = make([]*Sample, base)
			for v := int32(0); v < base; v++ {
				s := NewSample(outKey.N)
				if v == 0 {
					// A noiseless zero keeps the decomposition exact for
					// zero digits without spending noise budget.
					s.NoiselessTrivial(0)
				} else {
					// message: v * s_i / base^(j+1) on the torus
					mu := uint32(v) * uint32(inKey.Bits[i]) << (32 - (j+1)*baseLog)
					Encrypt(s, mu, alpha, outKey, rng)
				}
				ks.Rows[i][j][v] = s
			}
		}
	}
	return ks
}

// Apply key-switches src (under the input key) into dst (under the output
// key). dst must have dimension NOut.
func (ks *SwitchKey) Apply(dst, src *Sample) error {
	if src.Dimension() != ks.NIn {
		return fmt.Errorf("lwe: key switch input dimension %d, want %d", src.Dimension(), ks.NIn)
	}
	if dst.Dimension() != ks.NOut {
		return fmt.Errorf("lwe: key switch output dimension %d, want %d", dst.Dimension(), ks.NOut)
	}
	prec := uint(ks.Levels * ks.BaseLog)
	var roundBit uint32
	if prec < 32 {
		roundBit = uint32(1) << (31 - prec)
	}
	mask := uint32(1)<<ks.BaseLog - 1

	dst.NoiselessTrivial(src.B)
	for i, a := range src.A {
		// Round a to t*basebit bits of precision, then peel digits from the
		// most significant end.
		ai := a + roundBit
		for j := 0; j < ks.Levels; j++ {
			digit := (ai >> (32 - uint(j+1)*uint(ks.BaseLog))) & mask
			dst.SubFrom(ks.Rows[i][j][digit])
		}
	}
	return nil
}
