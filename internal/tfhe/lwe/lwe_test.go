package lwe

import (
	"math"
	"testing"
	"testing/quick"

	"pytfhe/internal/torus"
	"pytfhe/internal/trand"
)

func TestEncryptDecryptRoundTrip(t *testing.T) {
	rng := trand.NewSeeded([]byte("lwe-roundtrip"))
	key := NewKey(300, math.Pow(2, -18), rng)
	const msize = 8
	for mu := int32(0); mu < msize; mu++ {
		s := NewSample(key.N)
		Encrypt(s, torus.ModSwitchToTorus32(mu, msize), key.Stdev, key, rng)
		if got := Decrypt(s, key, msize); got != mu {
			t.Fatalf("decrypt(%d) = %d", mu, got)
		}
	}
}

func TestHomomorphicAddition(t *testing.T) {
	rng := trand.NewSeeded([]byte("lwe-add"))
	key := NewKey(200, math.Pow(2, -20), rng)
	const msize = 16
	for a := int32(0); a < 4; a++ {
		for b := int32(0); b < 4; b++ {
			sa := NewSample(key.N)
			sb := NewSample(key.N)
			Encrypt(sa, torus.ModSwitchToTorus32(a, msize), key.Stdev, key, rng)
			Encrypt(sb, torus.ModSwitchToTorus32(b, msize), key.Stdev, key, rng)
			sa.AddTo(sb)
			if got := Decrypt(sa, key, msize); got != a+b {
				t.Fatalf("%d+%d decrypted to %d", a, b, got)
			}
		}
	}
}

func TestHomomorphicScalarMul(t *testing.T) {
	rng := trand.NewSeeded([]byte("lwe-scalar"))
	key := NewKey(200, math.Pow(2, -20), rng)
	const msize = 32
	s := NewSample(key.N)
	Encrypt(s, torus.ModSwitchToTorus32(3, msize), key.Stdev, key, rng)
	out := NewSample(key.N)
	out.AddMulTo(5, s)
	if got := Decrypt(out, key, msize); got != 15 {
		t.Fatalf("5*3 decrypted to %d", got)
	}
}

func TestNegate(t *testing.T) {
	rng := trand.NewSeeded([]byte("lwe-neg"))
	key := NewKey(128, math.Pow(2, -20), rng)
	const msize = 8
	s := NewSample(key.N)
	Encrypt(s, torus.ModSwitchToTorus32(3, msize), key.Stdev, key, rng)
	s.Negate()
	if got := Decrypt(s, key, msize); got != 5 { // -3 mod 8
		t.Fatalf("-3 mod 8 decrypted to %d", got)
	}
}

func TestNoiselessTrivialDecryptsUnderAnyKey(t *testing.T) {
	rng := trand.NewSeeded([]byte("lwe-trivial"))
	f := func(seed uint32) bool {
		key := NewKey(64, 0, trand.NewSeeded([]byte{byte(seed), byte(seed >> 8), byte(seed >> 16), byte(seed >> 24)}))
		s := NewSample(key.N)
		s.NoiselessTrivial(torus.ModSwitchToTorus32(5, 8))
		return Decrypt(s, key, 8) == 5
	}
	_ = rng
	if err := quick.Check(f, &quick.Config{MaxCount: 16}); err != nil {
		t.Fatal(err)
	}
}

func TestKeySwitch(t *testing.T) {
	rng := trand.NewSeeded([]byte("lwe-ks"))
	inKey := NewKey(512, math.Pow(2, -25), rng)
	outKey := NewKey(128, math.Pow(2, -18), rng)
	ks := NewSwitchKey(inKey, outKey, 8, 2, math.Pow(2, -18), rng)
	const msize = 8
	for mu := int32(0); mu < msize; mu++ {
		in := NewSample(inKey.N)
		Encrypt(in, torus.ModSwitchToTorus32(mu, msize), inKey.Stdev, inKey, rng)
		out := NewSample(outKey.N)
		if err := ks.Apply(out, in); err != nil {
			t.Fatal(err)
		}
		if got := Decrypt(out, outKey, msize); got != mu {
			t.Fatalf("key switch of %d decrypted to %d", mu, got)
		}
	}
}

func TestKeySwitchDimensionMismatch(t *testing.T) {
	rng := trand.NewSeeded([]byte("lwe-ks-dim"))
	inKey := NewKey(64, 0, rng)
	outKey := NewKey(32, 0, rng)
	ks := NewSwitchKey(inKey, outKey, 4, 2, 0, rng)
	if err := ks.Apply(NewSample(32), NewSample(63)); err == nil {
		t.Fatal("expected input dimension error")
	}
	if err := ks.Apply(NewSample(33), NewSample(64)); err == nil {
		t.Fatal("expected output dimension error")
	}
}

func TestVarianceTracking(t *testing.T) {
	rng := trand.NewSeeded([]byte("lwe-var"))
	key := NewKey(64, math.Pow(2, -15), rng)
	a := NewSample(key.N)
	b := NewSample(key.N)
	Encrypt(a, 0, key.Stdev, key, rng)
	Encrypt(b, 0, key.Stdev, key, rng)
	v := a.Variance
	a.AddTo(b)
	if a.Variance <= v {
		t.Fatal("variance should grow under addition")
	}
	a.Clear()
	if a.Variance != 0 {
		t.Fatal("clear should reset variance")
	}
}
