// Package serial provides compact binary encodings for the TFHE objects
// that cross trust or machine boundaries: LWE ciphertexts (the paper's
// 2.46 KB payload — exactly (n+1) little-endian 32-bit words), bit-packed
// secret keys, and batch ciphertext framing for program I/O. The large
// evaluation keys ship with encoding/gob (see internal/cluster), which
// handles their nested structure; the formats here are for the small,
// high-frequency payloads where framing overhead matters.
package serial

import (
	"encoding/binary"
	"fmt"
	"math"

	"pytfhe/internal/params"
	"pytfhe/internal/tfhe/lwe"
)

// SampleSize returns the wire size of one ciphertext for dimension n.
func SampleSize(n int) int { return (n + 1) * 4 }

// MarshalSample encodes s as (n+1) little-endian uint32 words: the mask
// then the body. Noise-variance metadata is deliberately dropped — it is
// diagnostic only and must not leak to the server in a different trust
// model.
func MarshalSample(s *lwe.Sample) []byte {
	buf := make([]byte, SampleSize(s.Dimension()))
	for i, a := range s.A {
		binary.LittleEndian.PutUint32(buf[4*i:], a)
	}
	binary.LittleEndian.PutUint32(buf[4*len(s.A):], s.B)
	return buf
}

// UnmarshalSample decodes a ciphertext of dimension n.
func UnmarshalSample(data []byte, n int) (*lwe.Sample, error) {
	if len(data) != SampleSize(n) {
		return nil, fmt.Errorf("serial: ciphertext is %d bytes, want %d for dimension %d", len(data), SampleSize(n), n)
	}
	s := lwe.NewSample(n)
	for i := range s.A {
		s.A[i] = binary.LittleEndian.Uint32(data[4*i:])
	}
	s.B = binary.LittleEndian.Uint32(data[4*n:])
	return s, nil
}

// MarshalSamples frames a batch of equal-dimension ciphertexts:
// [count uint32][dim uint32][samples...].
func MarshalSamples(cts []*lwe.Sample) ([]byte, error) {
	if len(cts) == 0 {
		return []byte{0, 0, 0, 0, 0, 0, 0, 0}, nil
	}
	dim := cts[0].Dimension()
	buf := make([]byte, 8, 8+len(cts)*SampleSize(dim))
	binary.LittleEndian.PutUint32(buf[0:], uint32(len(cts)))
	binary.LittleEndian.PutUint32(buf[4:], uint32(dim))
	for i, ct := range cts {
		if ct.Dimension() != dim {
			return nil, fmt.Errorf("serial: ciphertext %d has dimension %d, batch is %d", i, ct.Dimension(), dim)
		}
		buf = append(buf, MarshalSample(ct)...)
	}
	return buf, nil
}

// UnmarshalSamples decodes a batch written by MarshalSamples.
func UnmarshalSamples(data []byte) ([]*lwe.Sample, error) {
	if len(data) < 8 {
		return nil, fmt.Errorf("serial: batch header truncated")
	}
	count := int(binary.LittleEndian.Uint32(data[0:]))
	dim := int(binary.LittleEndian.Uint32(data[4:]))
	if count == 0 {
		return nil, nil
	}
	if dim <= 0 || dim > 1<<20 {
		return nil, fmt.Errorf("serial: implausible ciphertext dimension %d", dim)
	}
	want := 8 + count*SampleSize(dim)
	if len(data) != want {
		return nil, fmt.Errorf("serial: batch is %d bytes, want %d", len(data), want)
	}
	cts := make([]*lwe.Sample, count)
	off := 8
	for i := range cts {
		ct, err := UnmarshalSample(data[off:off+SampleSize(dim)], dim)
		if err != nil {
			return nil, err
		}
		cts[i] = ct
		off += SampleSize(dim)
	}
	return cts, nil
}

// MarshalLWEKey bit-packs a binary LWE key:
// [n uint32][stdev float64][packed bits].
func MarshalLWEKey(k *lwe.Key) []byte {
	buf := make([]byte, 12+(k.N+7)/8)
	binary.LittleEndian.PutUint32(buf[0:], uint32(k.N))
	binary.LittleEndian.PutUint64(buf[4:], math.Float64bits(k.Stdev))
	for i, b := range k.Bits {
		if b != 0 {
			buf[12+i/8] |= 1 << uint(i%8)
		}
	}
	return buf
}

// UnmarshalLWEKey decodes a key written by MarshalLWEKey.
func UnmarshalLWEKey(data []byte) (*lwe.Key, error) {
	if len(data) < 12 {
		return nil, fmt.Errorf("serial: key header truncated")
	}
	n := int(binary.LittleEndian.Uint32(data[0:]))
	if n <= 0 || n > 1<<20 {
		return nil, fmt.Errorf("serial: implausible key dimension %d", n)
	}
	if len(data) != 12+(n+7)/8 {
		return nil, fmt.Errorf("serial: key is %d bytes, want %d", len(data), 12+(n+7)/8)
	}
	k := &lwe.Key{N: n, Bits: make([]int32, n), Stdev: math.Float64frombits(binary.LittleEndian.Uint64(data[4:]))}
	for i := range k.Bits {
		if data[12+i/8]&(1<<uint(i%8)) != 0 {
			k.Bits[i] = 1
		}
	}
	return k, nil
}

// VerifyPaperSize checks that the default parameter set yields the
// ciphertext size the paper reports (2.46 KB); exposed for tests and the
// Fig. 7 harness.
func VerifyPaperSize(p *params.GateParams) (int, bool) {
	size := SampleSize(p.LWEDimension)
	return size, size == p.CiphertextBytes()
}
