package serial

import (
	"testing"

	"pytfhe/internal/params"
	"pytfhe/internal/tfhe/lwe"
	"pytfhe/internal/trand"
)

func TestSampleRoundTrip(t *testing.T) {
	rng := trand.NewSeeded([]byte("serial-sample"))
	key := lwe.NewKey(63, 1.0/(1<<18), rng)
	s := lwe.NewSample(key.N)
	lwe.Encrypt(s, 1<<29, key.Stdev, key, rng)
	data := MarshalSample(s)
	if len(data) != SampleSize(key.N) {
		t.Fatalf("encoded %d bytes", len(data))
	}
	back, err := UnmarshalSample(data, key.N)
	if err != nil {
		t.Fatal(err)
	}
	if back.B != s.B {
		t.Fatal("body mismatch")
	}
	for i := range s.A {
		if back.A[i] != s.A[i] {
			t.Fatalf("mask %d mismatch", i)
		}
	}
	// Variance is deliberately not carried.
	if back.Variance != 0 {
		t.Fatal("variance leaked onto the wire")
	}
}

func TestSampleSizeMatchesPaper(t *testing.T) {
	size, ok := VerifyPaperSize(params.Default128())
	if !ok {
		t.Fatalf("wire size %d != params.CiphertextBytes", size)
	}
	if size != 2524 { // 2.46 KB
		t.Fatalf("default ciphertext is %d bytes, want 2524", size)
	}
}

func TestBatchRoundTrip(t *testing.T) {
	rng := trand.NewSeeded([]byte("serial-batch"))
	key := lwe.NewKey(32, 0, rng)
	var cts []*lwe.Sample
	for i := 0; i < 5; i++ {
		s := lwe.NewSample(key.N)
		lwe.Encrypt(s, uint32(i)<<28, 0, key, rng)
		cts = append(cts, s)
	}
	data, err := MarshalSamples(cts)
	if err != nil {
		t.Fatal(err)
	}
	back, err := UnmarshalSamples(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != 5 {
		t.Fatalf("decoded %d samples", len(back))
	}
	for i := range cts {
		if back[i].B != cts[i].B {
			t.Fatalf("sample %d body mismatch", i)
		}
	}
}

func TestBatchValidation(t *testing.T) {
	if _, err := UnmarshalSamples([]byte{1, 2}); err == nil {
		t.Fatal("truncated header accepted")
	}
	rng := trand.NewSeeded([]byte("serial-bad"))
	k1 := lwe.NewKey(8, 0, rng)
	k2 := lwe.NewKey(9, 0, rng)
	a := lwe.NewSample(k1.N)
	b := lwe.NewSample(k2.N)
	if _, err := MarshalSamples([]*lwe.Sample{a, b}); err == nil {
		t.Fatal("mixed dimensions accepted")
	}
	good, _ := MarshalSamples([]*lwe.Sample{a})
	if _, err := UnmarshalSamples(good[:len(good)-1]); err == nil {
		t.Fatal("truncated batch accepted")
	}
	empty, _ := MarshalSamples(nil)
	if out, err := UnmarshalSamples(empty); err != nil || out != nil {
		t.Fatal("empty batch should round-trip to nil")
	}
}

func TestLWEKeyRoundTrip(t *testing.T) {
	rng := trand.NewSeeded([]byte("serial-key"))
	key := lwe.NewKey(77, 1.0/(1<<15), rng)
	data := MarshalLWEKey(key)
	back, err := UnmarshalLWEKey(data)
	if err != nil {
		t.Fatal(err)
	}
	if back.N != key.N || back.Stdev != key.Stdev {
		t.Fatalf("metadata mismatch: %+v", back)
	}
	for i := range key.Bits {
		if back.Bits[i] != key.Bits[i] {
			t.Fatalf("bit %d mismatch", i)
		}
	}
	// The encryption still decrypts under the round-tripped key.
	s := lwe.NewSample(key.N)
	lwe.Encrypt(s, 1<<29, key.Stdev, key, rng)
	if got := lwe.Decrypt(s, back, 8); got != 1 {
		t.Fatalf("decryption under deserialized key = %d", got)
	}
}

func TestLWEKeyValidation(t *testing.T) {
	if _, err := UnmarshalLWEKey([]byte{1}); err == nil {
		t.Fatal("truncated key accepted")
	}
	rng := trand.NewSeeded([]byte("serial-kv"))
	key := lwe.NewKey(16, 0, rng)
	data := MarshalLWEKey(key)
	if _, err := UnmarshalLWEKey(data[:len(data)-1]); err == nil {
		t.Fatal("short key accepted")
	}
}
