package boot

import (
	"fmt"
	"testing"

	"pytfhe/internal/params"
	"pytfhe/internal/tfhe/lwe"
	"pytfhe/internal/torus"
	"pytfhe/internal/trand"
)

// TestBootstrapBatchMatchesSingle is the batch-equivalence property test:
// BootstrapBatch must be bit-exact with B independent Bootstrap calls on
// the same inputs, across batch sizes including ones that exercise scratch
// growth and the skip-at-zero gather path.
func TestBootstrapBatchMatchesSingle(t *testing.T) {
	rng := trand.NewSeeded([]byte("boot-batch"))
	p := params.Test()
	_, ck, err := GenerateKeys(p, rng)
	if err != nil {
		t.Fatal(err)
	}
	single := NewEvaluator(ck)
	batch := NewBatchEvaluator(ck, 2) // deliberately small: force growth

	for _, b := range []int{1, 2, 3, 7, 64} {
		t.Run(fmt.Sprintf("B%d", b), func(t *testing.T) {
			src := make([]*lwe.Sample, b)
			mu := make([]torus.Torus32, b)
			want := make([]*lwe.Sample, b)
			got := make([]*lwe.Sample, b)
			for m := 0; m < b; m++ {
				src[m] = lwe.NewSample(p.LWEDimension)
				for i := range src[m].A {
					src[m].A[i] = rng.Torus32()
				}
				src[m].B = rng.Torus32()
				mu[m] = torus.Torus32(1) << 29
				if m%3 == 0 {
					mu[m] = rng.Torus32()
				}
				want[m] = lwe.NewSample(p.LWEDimension)
				got[m] = lwe.NewSample(p.LWEDimension)
			}
			for m := 0; m < b; m++ {
				if err := single.Bootstrap(want[m], mu[m], src[m]); err != nil {
					t.Fatal(err)
				}
			}
			if err := batch.BootstrapBatch(got, mu, src); err != nil {
				t.Fatal(err)
			}
			for m := 0; m < b; m++ {
				if got[m].B != want[m].B {
					t.Fatalf("member %d: body %#x, want %#x", m, got[m].B, want[m].B)
				}
				for i := range want[m].A {
					if got[m].A[i] != want[m].A[i] {
						t.Fatalf("member %d mask %d: %#x, want %#x", m, i, got[m].A[i], want[m].A[i])
					}
				}
				if got[m].Variance != want[m].Variance {
					t.Fatalf("member %d: variance %g, want %g", m, got[m].Variance, want[m].Variance)
				}
			}
		})
	}
}

// TestBootstrapBatchWoKSMatchesSingle covers the no-key-switch variant.
func TestBootstrapBatchWoKSMatchesSingle(t *testing.T) {
	rng := trand.NewSeeded([]byte("boot-batch-woks"))
	p := params.Test()
	_, ck, err := GenerateKeys(p, rng)
	if err != nil {
		t.Fatal(err)
	}
	single := NewEvaluator(ck)
	batch := NewBatchEvaluator(ck, 4)

	const b = 5
	src := make([]*lwe.Sample, b)
	mu := make([]torus.Torus32, b)
	want := make([]*lwe.Sample, b)
	got := make([]*lwe.Sample, b)
	for m := 0; m < b; m++ {
		src[m] = lwe.NewSample(p.LWEDimension)
		for i := range src[m].A {
			src[m].A[i] = rng.Torus32()
		}
		src[m].B = rng.Torus32()
		mu[m] = rng.Torus32()
		want[m] = lwe.NewSample(p.ExtractedLWEDimension())
		got[m] = lwe.NewSample(p.ExtractedLWEDimension())
		single.BootstrapWoKS(want[m], mu[m], src[m])
	}
	if err := batch.BootstrapBatchWoKS(got, mu, src); err != nil {
		t.Fatal(err)
	}
	for m := 0; m < b; m++ {
		if got[m].B != want[m].B {
			t.Fatalf("member %d: body %#x, want %#x", m, got[m].B, want[m].B)
		}
		for i := range want[m].A {
			if got[m].A[i] != want[m].A[i] {
				t.Fatalf("member %d mask %d: %#x, want %#x", m, i, got[m].A[i], want[m].A[i])
			}
		}
	}
}

// TestBootstrapLUTBatchMatchesSingle checks the programmable-bootstrap
// batch path against per-member BootstrapLUT, covering lower-half messages
// and the negacyclic upper-half wraparound.
func TestBootstrapLUTBatchMatchesSingle(t *testing.T) {
	rng := trand.NewSeeded([]byte("boot-batch-lut"))
	p := params.Test()
	sk, ck, err := GenerateKeys(p, rng)
	if err != nil {
		t.Fatal(err)
	}
	single := NewEvaluator(ck)
	batch := NewBatchEvaluator(ck, 1)

	const msize = 8
	table := []int32{3, 0, 6, 5}
	lut := func(m int) torus.Torus32 {
		if m < len(table) {
			return torus.ModSwitchToTorus32(table[m], msize)
		}
		return 0
	}

	// One member per message slot, including upper-half (wraparound) slots.
	const b = msize
	src := make([]*lwe.Sample, b)
	want := make([]*lwe.Sample, b)
	got := make([]*lwe.Sample, b)
	for m := 0; m < b; m++ {
		src[m] = lwe.NewSample(p.LWEDimension)
		lwe.Encrypt(src[m], torus.ModSwitchToTorus32(int32(m), msize), p.LWEStdev, sk.LWE, rng)
		want[m] = lwe.NewSample(p.LWEDimension)
		got[m] = lwe.NewSample(p.LWEDimension)
		if err := single.BootstrapLUT(want[m], lut, msize, src[m]); err != nil {
			t.Fatal(err)
		}
	}
	if err := batch.BootstrapLUTBatch(got, lut, msize, src); err != nil {
		t.Fatal(err)
	}
	for m := 0; m < b; m++ {
		if got[m].B != want[m].B {
			t.Fatalf("slot %d: body %#x, want %#x", m, got[m].B, want[m].B)
		}
		for i := range want[m].A {
			if got[m].A[i] != want[m].A[i] {
				t.Fatalf("slot %d mask %d: %#x, want %#x", m, i, got[m].A[i], want[m].A[i])
			}
		}
		// Wraparound semantics carry over: upper-half slots decrypt to -lut.
		dec := lwe.Decrypt(got[m], sk.LWE, msize)
		wantMsg := table[m%4]
		if m >= msize/2 {
			wantMsg = (msize - wantMsg) % msize
		}
		if dec != wantMsg {
			t.Fatalf("slot %d decrypts to %d, want %d", m, dec, wantMsg)
		}
	}
}

// TestBootstrapLUTBatchValidation mirrors the single-path validation.
func TestBootstrapLUTBatchValidation(t *testing.T) {
	rng := trand.NewSeeded([]byte("boot-batch-lut-bad"))
	p := params.Test()
	_, ck, err := GenerateKeys(p, rng)
	if err != nil {
		t.Fatal(err)
	}
	batch := NewBatchEvaluator(ck, 1)
	in := []*lwe.Sample{lwe.NewSample(p.LWEDimension)}
	out := []*lwe.Sample{lwe.NewSample(p.LWEDimension)}
	lut := func(m int) torus.Torus32 { return 0 }
	if err := batch.BootstrapLUTBatch(out, lut, 7, in); err == nil {
		t.Fatal("odd message space accepted")
	}
	if err := batch.BootstrapLUTBatch(out, lut, 4*p.PolyDegree, in); err == nil {
		t.Fatal("oversized message space accepted")
	}
	if err := batch.BootstrapBatch(out, nil, in); err == nil {
		t.Fatal("mu length mismatch accepted")
	}
}

// TestBatchProfileCounters checks the amortization counters and that
// Profile.Add carries them.
func TestBatchProfileCounters(t *testing.T) {
	rng := trand.NewSeeded([]byte("boot-batch-prof"))
	p := params.Test()
	_, ck, err := GenerateKeys(p, rng)
	if err != nil {
		t.Fatal(err)
	}
	batch := NewBatchEvaluator(ck, 4)
	batch.Profile = true
	const b = 3
	src := make([]*lwe.Sample, b)
	mu := make([]torus.Torus32, b)
	dst := make([]*lwe.Sample, b)
	for m := 0; m < b; m++ {
		src[m] = lwe.NewSample(p.LWEDimension)
		dst[m] = lwe.NewSample(p.LWEDimension)
		mu[m] = 1 << 29
	}
	for round := 0; round < 2; round++ {
		if err := batch.BootstrapBatch(dst, mu, src); err != nil {
			t.Fatal(err)
		}
	}
	prof := batch.Prof
	if prof.Batches != 2 || prof.BatchedGates != 2*b || prof.Gates != 2*b {
		t.Fatalf("profile counters = %+v", prof)
	}
	if prof.AvgBatchFill() != b {
		t.Fatalf("avg fill = %g, want %d", prof.AvgBatchFill(), b)
	}
	if prof.BlindRotate <= 0 || prof.KeySwitch <= 0 {
		t.Fatalf("phase timings not recorded: %+v", prof)
	}
	var sum Profile
	sum.Add(&prof)
	sum.Add(&prof)
	if sum.Batches != 4 || sum.BatchedGates != 4*b {
		t.Fatalf("Profile.Add dropped batch fields: %+v", sum)
	}
}
