package boot

import (
	"testing"

	"pytfhe/internal/params"
	"pytfhe/internal/tfhe/lwe"
	"pytfhe/internal/torus"
	"pytfhe/internal/trand"
)

func TestBootstrapRefreshesNoise(t *testing.T) {
	rng := trand.NewSeeded([]byte("boot-refresh"))
	p := params.Test()
	sk, ck, err := GenerateKeys(p, rng)
	if err != nil {
		t.Fatal(err)
	}
	eval := NewEvaluator(ck)
	mu := torus.Torus32(1) << 29 // 1/8

	for _, positive := range []bool{true, false} {
		msg := mu
		if !positive {
			msg = -mu
		}
		in := lwe.NewSample(p.LWEDimension)
		lwe.Encrypt(in, msg, p.LWEStdev, sk.LWE, rng)
		out := lwe.NewSample(p.LWEDimension)
		if err := eval.Bootstrap(out, mu, in); err != nil {
			t.Fatal(err)
		}
		phase := int32(lwe.Phase(out, sk.LWE))
		if positive && phase <= 0 {
			t.Fatalf("bootstrap of +1/8 gave phase %d", phase)
		}
		if !positive && phase >= 0 {
			t.Fatalf("bootstrap of -1/8 gave phase %d", phase)
		}
		// The refreshed phase must be close to ±1/8: within 1/32 of it.
		want := int32(mu)
		if !positive {
			want = -want
		}
		diff := phase - want
		if diff < 0 {
			diff = -diff
		}
		if diff > 1<<27 {
			t.Fatalf("refreshed phase %d too far from %d", phase, want)
		}
	}
}

func TestBootstrapWoKSDimension(t *testing.T) {
	rng := trand.NewSeeded([]byte("boot-dim"))
	p := params.Test()
	sk, ck, err := GenerateKeys(p, rng)
	if err != nil {
		t.Fatal(err)
	}
	eval := NewEvaluator(ck)
	in := lwe.NewSample(p.LWEDimension)
	lwe.Encrypt(in, 1<<29, p.LWEStdev, sk.LWE, rng)
	out := lwe.NewSample(p.ExtractedLWEDimension())
	eval.BootstrapWoKS(out, 1<<29, in)
	if out.Dimension() != p.ExtractedLWEDimension() {
		t.Fatalf("extracted dimension %d, want %d", out.Dimension(), p.ExtractedLWEDimension())
	}
	// Must decrypt under the extracted key.
	if phase := int32(lwe.Phase(out, sk.Extracted)); phase <= 0 {
		t.Fatalf("phase under extracted key = %d, want positive", phase)
	}
}

func TestGenerateKeysRejectsBadParams(t *testing.T) {
	rng := trand.NewSeeded([]byte("boot-bad"))
	bad := params.Test()
	bad.PolyDegree = 100 // not a power of two
	if _, _, err := GenerateKeys(bad, rng); err == nil {
		t.Fatal("expected parameter validation error")
	}
}

// TestFullParamGate exercises one bootstrapped gate with the production
// 128-bit parameter set. It is the calibration point for every cost model in
// the benchmark harness.
func TestFullParamGate(t *testing.T) {
	if testing.Short() {
		t.Skip("full-parameter bootstrap skipped in -short mode")
	}
	rng := trand.NewSeeded([]byte("boot-full"))
	p := params.Default128()
	sk, ck, err := GenerateKeys(p, rng)
	if err != nil {
		t.Fatal(err)
	}
	eval := NewEvaluator(ck)
	mu := torus.Torus32(1) << 29

	// NAND truth table through the real linear-combination + bootstrap path.
	enc := func(b bool) *lwe.Sample {
		m := mu
		if !b {
			m = -mu
		}
		s := lwe.NewSample(p.LWEDimension)
		lwe.Encrypt(s, m, p.LWEStdev, sk.LWE, rng)
		return s
	}
	for _, a := range []bool{false, true} {
		for _, b := range []bool{false, true} {
			tmp := lwe.NewSample(p.LWEDimension)
			tmp.NoiselessTrivial(mu)
			tmp.SubFrom(enc(a))
			tmp.SubFrom(enc(b))
			out := lwe.NewSample(p.LWEDimension)
			if err := eval.Bootstrap(out, mu, tmp); err != nil {
				t.Fatal(err)
			}
			got := int32(lwe.Phase(out, sk.LWE)) > 0
			if got != !(a && b) {
				t.Fatalf("NAND(%v,%v) = %v", a, b, got)
			}
		}
	}
}

// TestBootstrapLUT exercises programmable bootstrapping: an arbitrary
// lookup table evaluated during the noise refresh (§II.B of the paper).
func TestBootstrapLUT(t *testing.T) {
	rng := trand.NewSeeded([]byte("boot-lut"))
	p := params.Test()
	sk, ck, err := GenerateKeys(p, rng)
	if err != nil {
		t.Fatal(err)
	}
	eval := NewEvaluator(ck)

	const msize = 8
	table := []int32{3, 0, 6, 5} // arbitrary f over [0, msize/2)
	lut := func(m int) torus.Torus32 {
		if m < len(table) {
			return torus.ModSwitchToTorus32(table[m], msize)
		}
		return 0
	}

	for m := int32(0); m < msize/2; m++ {
		in := lwe.NewSample(p.LWEDimension)
		lwe.Encrypt(in, torus.ModSwitchToTorus32(m, msize), p.LWEStdev, sk.LWE, rng)
		out := lwe.NewSample(p.LWEDimension)
		if err := eval.BootstrapLUT(out, lut, msize, in); err != nil {
			t.Fatal(err)
		}
		got := lwe.Decrypt(out, sk.LWE, msize)
		if got != table[m] {
			t.Fatalf("lut(%d) = %d, want %d", m, got, table[m])
		}
	}
}

func TestBootstrapLUTNegacyclicWraparound(t *testing.T) {
	rng := trand.NewSeeded([]byte("boot-lut-wrap"))
	p := params.Test()
	sk, ck, err := GenerateKeys(p, rng)
	if err != nil {
		t.Fatal(err)
	}
	eval := NewEvaluator(ck)

	const msize = 8
	lut := func(m int) torus.Torus32 { return torus.ModSwitchToTorus32(1, msize) }
	// A message in the upper half decrypts to the negated table entry.
	in := lwe.NewSample(p.LWEDimension)
	lwe.Encrypt(in, torus.ModSwitchToTorus32(5, msize), p.LWEStdev, sk.LWE, rng)
	out := lwe.NewSample(p.LWEDimension)
	if err := eval.BootstrapLUT(out, lut, msize, in); err != nil {
		t.Fatal(err)
	}
	got := lwe.Decrypt(out, sk.LWE, msize)
	if got != 7 { // -1 mod 8
		t.Fatalf("upper-half message returned %d, want -lut = 7", got)
	}
}

func TestBootstrapLUTValidation(t *testing.T) {
	rng := trand.NewSeeded([]byte("boot-lut-bad"))
	p := params.Test()
	_, ck, err := GenerateKeys(p, rng)
	if err != nil {
		t.Fatal(err)
	}
	eval := NewEvaluator(ck)
	in := lwe.NewSample(p.LWEDimension)
	out := lwe.NewSample(p.LWEDimension)
	lut := func(m int) torus.Torus32 { return 0 }
	if err := eval.BootstrapLUT(out, lut, 7, in); err == nil {
		t.Fatal("odd message space accepted")
	}
	if err := eval.BootstrapLUT(out, lut, 4*p.PolyDegree, in); err == nil {
		t.Fatal("oversized message space accepted")
	}
}
