package boot

import (
	"fmt"

	"pytfhe/internal/tfhe/lwe"
	"pytfhe/internal/tfhe/tlwe"
	"pytfhe/internal/torus"
)

// Programmable bootstrapping: TFHE's blind rotation evaluates an arbitrary
// lookup table *during* the noise refresh (the property the paper's §II.B
// highlights). The test vector is programmed so that coefficient 0 of the
// rotated accumulator is lut(m) when the input phase encodes message m.
//
// Because the ring is negacyclic (X^N = -1), a test vector can only
// represent a function over half the torus directly: inputs must encode
// messages in [0, msize/2), or the function must satisfy the antiperiodic
// condition f(m + msize/2) = -f(m). BootstrapLUT implements the half-torus
// convention and documents the wraparound.

// BootstrapLUT evaluates dst = Enc(lut(m)) for an input encrypting message
// m in a space of msize slots (phase m/msize). msize must be even, at most
// 2N, and the encrypted message must lie in [0, msize/2); messages in the
// upper half decrypt to -lut(m - msize/2) by negacyclicity. The output is
// key-switched to the gate key like a normal gate bootstrap.
func (e *Evaluator) BootstrapLUT(dst *lwe.Sample, lut func(m int) torus.Torus32, msize int, src *lwe.Sample) error {
	if err := e.BootstrapLUTWoKS(e.extr, lut, msize, src); err != nil {
		return err
	}
	return e.CK.KS.Apply(dst, e.extr)
}

// BootstrapLUTWoKS is BootstrapLUT without the final key switch: the
// result lives under the extracted (N·k-dimensional) key.
func (e *Evaluator) BootstrapLUTWoKS(dst *lwe.Sample, lut func(m int) torus.Torus32, msize int, src *lwe.Sample) error {
	p := e.CK.Params
	twoN := 2 * p.PolyDegree
	if msize <= 0 || msize%2 != 0 {
		return fmt.Errorf("boot: LUT message space must be a positive even number, got %d", msize)
	}
	if msize > twoN {
		return fmt.Errorf("boot: LUT message space %d exceeds 2N = %d", msize, twoN)
	}

	// Program the test vector: the input phase is offset by half a slot so
	// message m occupies ring positions [m*2N/msize, (m+1)*2N/msize) — this
	// keeps m = 0 robust against negative noise — and coefficient j then
	// holds lut(floor(j*msize/2N)).
	n := p.PolyDegree
	for j := 0; j < n; j++ {
		m := j * msize / twoN
		e.testvect.Coefs[j] = lut(m % msize)
	}
	halfSlot := torus.Torus32(uint32((uint64(1) << 32) / uint64(2*msize)))
	barb := modSwitch2N(src.B+halfSlot, twoN)
	if barb != 0 {
		e.rotated.MulByXai(twoN-barb, e.testvect)
	} else {
		e.rotated.Copy(e.testvect)
	}
	e.acc.NoiselessTrivial(e.rotated)
	for i, a := range src.A {
		bara := modSwitch2N(a, twoN)
		if bara == 0 {
			continue
		}
		e.scratch.CMuxRotateInPlace(e.acc, e.CK.BK[i], bara)
	}
	if dst.Dimension() != p.ExtractedLWEDimension() {
		return fmt.Errorf("boot: LUT output dimension %d, want %d", dst.Dimension(), p.ExtractedLWEDimension())
	}
	tlwe.ExtractSample(dst, e.acc)
	return nil
}
