// Package boot implements TFHE gate bootstrapping: generation of the
// bootstrapping and key-switching keys (the "cloud key"), blind rotation of
// a test vector, sample extraction, and the programmable bootstrap used by
// every homomorphic gate.
//
// The package also exposes a Profile so callers can attribute time to blind
// rotation versus key switching — the breakdown the paper reports in Fig. 7.
package boot

import (
	"fmt"
	"sync"
	"time"

	"pytfhe/internal/params"
	"pytfhe/internal/tfhe/lwe"
	"pytfhe/internal/tfhe/tgsw"
	"pytfhe/internal/tfhe/tlwe"
	"pytfhe/internal/torus"
	"pytfhe/internal/trand"
)

// SecretKey holds every secret component: the scalar LWE key gates operate
// under, the ring key, and the extracted key that bridges them.
type SecretKey struct {
	Params    *params.GateParams
	LWE       *lwe.Key  // n-dimensional gate key
	Ring      *tlwe.Key // ring key (degree N, k masks)
	Extracted *lwe.Key  // N*k-dimensional key extracted from Ring
}

// CloudKey is the public evaluation key material: the Fourier-domain
// bootstrapping key (one TGSW encryption of each LWE key bit) and the
// key-switching key from the extracted key back to the gate key.
type CloudKey struct {
	Params *params.GateParams
	BK     []*tgsw.FourierSample
	KS     *lwe.SwitchKey

	halfOnce sync.Once
	bkHalf   []*tgsw.HalfSample
}

// BKHalf returns the bootstrapping key in the half-complex representation
// used by the batched blind-rotate engine, converting it from BK on first
// use (the conversion is exact — see tgsw.FourierSample.Half). The result
// is shared by every BatchEvaluator on this key; gob encoding of a CloudKey
// carries only the exported fields, so decoded keys rebuild it lazily too.
func (ck *CloudKey) BKHalf() []*tgsw.HalfSample {
	ck.halfOnce.Do(func() {
		proc := torus.NewProcessor(ck.Params.PolyDegree)
		ck.bkHalf = make([]*tgsw.HalfSample, len(ck.BK))
		for i, g := range ck.BK {
			ck.bkHalf[i] = g.Half(proc)
		}
	})
	return ck.bkHalf
}

// GenerateKeys produces a fresh secret key and the matching cloud key.
func GenerateKeys(p *params.GateParams, rng *trand.Source) (*SecretKey, *CloudKey, error) {
	if err := p.Validate(); err != nil {
		return nil, nil, fmt.Errorf("boot: invalid parameters: %w", err)
	}
	gp := tgsw.Params{Levels: p.DecompLevels, BaseLog: p.DecompBaseLog}
	sk := &SecretKey{
		Params: p,
		LWE:    lwe.NewKey(p.LWEDimension, p.LWEStdev, rng),
		Ring:   tlwe.NewKey(p.PolyDegree, p.RingCount, p.TLWEStdev, rng),
	}
	sk.Extracted = sk.Ring.ExtractLWEKey()

	ck := &CloudKey{Params: p}
	proc := torus.NewProcessor(p.PolyDegree)
	ringKey := &tgsw.Key{TLWE: sk.Ring, Params: gp}
	ck.BK = make([]*tgsw.FourierSample, p.LWEDimension)
	raw := tgsw.NewSample(p.PolyDegree, p.RingCount, gp)
	for i := 0; i < p.LWEDimension; i++ {
		tgsw.Encrypt(raw, sk.LWE.Bits[i], p.TLWEStdev, ringKey, rng)
		ck.BK[i] = raw.ToFourier(proc)
	}
	ck.KS = lwe.NewSwitchKey(sk.Extracted, sk.LWE, p.KSLevels, p.KSBaseLog, p.LWEStdev, rng)
	return sk, ck, nil
}

// Profile accumulates wall-clock time per bootstrapping phase. Zero value is
// ready to use. It is not safe for concurrent use; each Evaluator owns one.
type Profile struct {
	BlindRotate time.Duration
	Extract     time.Duration
	KeySwitch   time.Duration
	Gates       int64

	// Batch amortization counters (BatchEvaluator): how many BootstrapBatch
	// dispatches ran and how many gates they covered. BatchedGates/Batches
	// is the average batch fill the kernel actually saw.
	Batches      int64
	BatchedGates int64
}

// Total returns the profiled time across all phases.
func (p *Profile) Total() time.Duration {
	return p.BlindRotate + p.Extract + p.KeySwitch
}

// AvgBatchFill returns the average number of gates per batched dispatch, or
// 0 when no batches ran.
func (p *Profile) AvgBatchFill() float64 {
	if p.Batches == 0 {
		return 0
	}
	return float64(p.BatchedGates) / float64(p.Batches)
}

// Add merges other into p.
func (p *Profile) Add(other *Profile) {
	p.BlindRotate += other.BlindRotate
	p.Extract += other.Extract
	p.KeySwitch += other.KeySwitch
	p.Gates += other.Gates
	p.Batches += other.Batches
	p.BatchedGates += other.BatchedGates
}

// Evaluator performs bootstrapping with preallocated scratch space. It is
// not safe for concurrent use; create one Evaluator per worker goroutine
// (they can share the same CloudKey, which is immutable after generation).
type Evaluator struct {
	CK      *CloudKey
	Prof    Profile
	Profile bool // when true, phases are timed into Prof

	scratch  *tgsw.Scratch
	acc      *tlwe.Sample
	testvect *torus.TorusPoly
	rotated  *torus.TorusPoly
	extr     *lwe.Sample
}

// NewEvaluator returns an evaluator bound to ck.
func NewEvaluator(ck *CloudKey) *Evaluator {
	p := ck.Params
	gp := tgsw.Params{Levels: p.DecompLevels, BaseLog: p.DecompBaseLog}
	return &Evaluator{
		CK:       ck,
		scratch:  tgsw.NewScratch(p.PolyDegree, p.RingCount, gp),
		acc:      tlwe.NewSample(p.PolyDegree, p.RingCount),
		testvect: torus.NewTorusPoly(p.PolyDegree),
		rotated:  torus.NewTorusPoly(p.PolyDegree),
		extr:     lwe.NewSample(p.ExtractedLWEDimension()),
	}
}

// modSwitch2N rescales a torus element to Z_{2N}.
func modSwitch2N(phase torus.Torus32, twoN int) int {
	v := (uint64(phase)*uint64(twoN) + (1 << 31)) >> 32
	return int(v) & (twoN - 1)
}

// BootstrapWoKS performs the programmable bootstrap of src with a constant
// test vector mu, leaving the result under the extracted key (no key
// switch): dst decrypts to +mu when the phase of src lies in [0, 1/2) and
// to -mu otherwise. dst must have dimension N*k.
func (e *Evaluator) BootstrapWoKS(dst *lwe.Sample, mu torus.Torus32, src *lwe.Sample) {
	var start time.Time
	if e.Profile {
		start = time.Now()
	}
	p := e.CK.Params
	twoN := 2 * p.PolyDegree

	for j := range e.testvect.Coefs {
		e.testvect.Coefs[j] = mu
	}
	barb := modSwitch2N(src.B, twoN)
	if barb != 0 {
		e.rotated.MulByXai(twoN-barb, e.testvect)
	} else {
		e.rotated.Copy(e.testvect)
	}
	e.acc.NoiselessTrivial(e.rotated)

	for i, a := range src.A {
		bara := modSwitch2N(a, twoN)
		if bara == 0 {
			continue
		}
		e.scratch.CMuxRotateInPlace(e.acc, e.CK.BK[i], bara)
	}
	if e.Profile {
		e.Prof.BlindRotate += time.Since(start)
		start = time.Now()
	}
	tlwe.ExtractSample(dst, e.acc)
	if e.Profile {
		e.Prof.Extract += time.Since(start)
	}
}

// Bootstrap performs the full gate bootstrap: blind rotation, extraction,
// and key switch back to the n-dimensional gate key.
func (e *Evaluator) Bootstrap(dst *lwe.Sample, mu torus.Torus32, src *lwe.Sample) error {
	e.BootstrapWoKS(e.extr, mu, src)
	var start time.Time
	if e.Profile {
		start = time.Now()
	}
	err := e.CK.KS.Apply(dst, e.extr)
	if e.Profile {
		e.Prof.KeySwitch += time.Since(start)
		e.Prof.Gates++
	}
	return err
}
