package boot

import (
	"fmt"
	"time"

	"pytfhe/internal/tfhe/lwe"
	"pytfhe/internal/tfhe/tgsw"
	"pytfhe/internal/tfhe/tlwe"
	"pytfhe/internal/torus"
)

// BatchEvaluator bootstraps B ciphertexts per call in a structure-of-arrays
// blind rotation: the key-index loop is outermost, so for every bootstrap-
// key index i the TGSW sample BK[i], the gadget geometry, and the FFT
// twiddle tables are loaded once and applied to all B accumulators before
// advancing to i+1 — the single-gate path re-streams the entire key per
// gate instead. The rotations run on the half-complex kernel engine
// (tgsw.BatchScratch.CMuxRotateBatchHalf), whose per-gate results are
// bit-exact with Evaluator.Bootstrap.
//
// Like Evaluator, a BatchEvaluator is not safe for concurrent use: create
// one per worker goroutine. The half-domain bootstrapping key is built once
// per CloudKey and shared.
type BatchEvaluator struct {
	CK      *CloudKey
	Prof    Profile
	Profile bool // when true, phases are timed into Prof

	bkHalf   []*tgsw.HalfSample
	bs       *tgsw.BatchScratch
	accs     []*tlwe.Sample
	testvect *torus.TorusPoly
	rotated  *torus.TorusPoly
	extr     *lwe.Sample
	bara     []int // member-major [b][n] mod-switched mask coefficients
	sel      []int
	selAccs  []*tlwe.Sample
}

// NewBatchEvaluator returns a batch evaluator bound to ck, pre-sized for
// batches of up to capacity ciphertexts (it grows on demand).
func NewBatchEvaluator(ck *CloudKey, capacity int) *BatchEvaluator {
	p := ck.Params
	gp := tgsw.Params{Levels: p.DecompLevels, BaseLog: p.DecompBaseLog}
	if capacity < 1 {
		capacity = 1
	}
	e := &BatchEvaluator{
		CK:       ck,
		bkHalf:   ck.BKHalf(),
		bs:       tgsw.NewBatchScratch(p.PolyDegree, p.RingCount, gp, 1),
		testvect: torus.NewTorusPoly(p.PolyDegree),
		rotated:  torus.NewTorusPoly(p.PolyDegree),
		extr:     lwe.NewSample(p.ExtractedLWEDimension()),
	}
	e.grow(capacity)
	return e
}

func (e *BatchEvaluator) grow(b int) {
	p := e.CK.Params
	for len(e.accs) < b {
		e.accs = append(e.accs, tlwe.NewSample(p.PolyDegree, p.RingCount))
	}
	if cap(e.bara) < b*p.LWEDimension {
		e.bara = make([]int, b*p.LWEDimension)
	}
	if cap(e.sel) < b {
		e.sel = make([]int, 0, b)
		e.selAccs = make([]*tlwe.Sample, 0, b)
	}
}

func (e *BatchEvaluator) checkLens(dst []*lwe.Sample, nmu int, src []*lwe.Sample) error {
	if len(dst) != len(src) || nmu != len(src) {
		return fmt.Errorf("boot: batch length mismatch: dst=%d mu=%d src=%d", len(dst), nmu, len(src))
	}
	n := e.CK.Params.LWEDimension
	for m, s := range src {
		if s.Dimension() != n {
			return fmt.Errorf("boot: batch member %d: input dimension %d, want %d", m, s.Dimension(), n)
		}
	}
	return nil
}

// blindRotateBatch runs the shared structure-of-arrays rotation over the
// already-initialized accumulators accs[0..b-1], using e.bara. Members
// whose mod-switched coefficient is zero at index i are skipped, exactly
// like the single path.
func (e *BatchEvaluator) blindRotateBatch(b int, src []*lwe.Sample) {
	p := e.CK.Params
	n := p.LWEDimension
	twoN := 2 * p.PolyDegree
	for m := 0; m < b; m++ {
		row := e.bara[m*n : (m+1)*n]
		for i, a := range src[m].A {
			row[i] = modSwitch2N(a, twoN)
		}
	}
	for i := 0; i < n; i++ {
		sel := e.sel[:0]
		selAccs := e.selAccs[:0]
		for m := 0; m < b; m++ {
			if a := e.bara[m*n+i]; a != 0 {
				sel = append(sel, a)
				selAccs = append(selAccs, e.accs[m])
			}
		}
		if len(sel) > 0 {
			e.bs.CMuxRotateBatchHalf(selAccs, e.bkHalf[i], sel)
		}
	}
}

// initConstAccs programs each accumulator with the constant test vector
// mu[m] rotated by member m's mod-switched body, exactly as the single path
// does.
func (e *BatchEvaluator) initConstAccs(b int, mu []torus.Torus32, src []*lwe.Sample) {
	twoN := 2 * e.CK.Params.PolyDegree
	for m := 0; m < b; m++ {
		for j := range e.testvect.Coefs {
			e.testvect.Coefs[j] = mu[m]
		}
		barb := modSwitch2N(src[m].B, twoN)
		if barb != 0 {
			e.rotated.MulByXai(twoN-barb, e.testvect)
		} else {
			e.rotated.Copy(e.testvect)
		}
		e.accs[m].NoiselessTrivial(e.rotated)
	}
}

// BootstrapBatchWoKS bootstraps the batch with constant test vectors mu[m],
// leaving each result under the extracted key (no key switch). Every
// dst[m] must have dimension N*k.
func (e *BatchEvaluator) BootstrapBatchWoKS(dst []*lwe.Sample, mu []torus.Torus32, src []*lwe.Sample) error {
	if err := e.checkLens(dst, len(mu), src); err != nil {
		return err
	}
	b := len(src)
	if b == 0 {
		return nil
	}
	e.grow(b)
	var start time.Time
	if e.Profile {
		start = time.Now()
	}
	e.initConstAccs(b, mu, src)
	e.blindRotateBatch(b, src)
	if e.Profile {
		e.Prof.BlindRotate += time.Since(start)
		start = time.Now()
	}
	for m := 0; m < b; m++ {
		tlwe.ExtractSample(dst[m], e.accs[m])
	}
	if e.Profile {
		e.Prof.Extract += time.Since(start)
		e.Prof.Batches++
		e.Prof.BatchedGates += int64(b)
	}
	return nil
}

// BootstrapBatch performs full gate bootstraps of the whole batch: blind
// rotation with constant test vectors mu[m], extraction, and key switch of
// every member back to the n-dimensional gate key. Each member's output is
// bit-exact with Evaluator.Bootstrap on the same input.
func (e *BatchEvaluator) BootstrapBatch(dst []*lwe.Sample, mu []torus.Torus32, src []*lwe.Sample) error {
	if err := e.checkLens(dst, len(mu), src); err != nil {
		return err
	}
	b := len(src)
	if b == 0 {
		return nil
	}
	e.grow(b)
	var start time.Time
	if e.Profile {
		start = time.Now()
	}
	e.initConstAccs(b, mu, src)
	e.blindRotateBatch(b, src)
	if e.Profile {
		e.Prof.BlindRotate += time.Since(start)
	}
	return e.extractAndSwitch(dst, b)
}

// extractAndSwitch extracts every accumulator and key-switches it to the
// gate key, with per-phase timing.
func (e *BatchEvaluator) extractAndSwitch(dst []*lwe.Sample, b int) error {
	var start time.Time
	for m := 0; m < b; m++ {
		if e.Profile {
			start = time.Now()
		}
		tlwe.ExtractSample(e.extr, e.accs[m])
		if e.Profile {
			now := time.Now()
			e.Prof.Extract += now.Sub(start)
			start = now
		}
		if err := e.CK.KS.Apply(dst[m], e.extr); err != nil {
			return err
		}
		if e.Profile {
			e.Prof.KeySwitch += time.Since(start)
		}
	}
	if e.Profile {
		e.Prof.Gates += int64(b)
		e.Prof.Batches++
		e.Prof.BatchedGates += int64(b)
	}
	return nil
}

// BootstrapMixedBatch runs one structure-of-arrays blind rotation over a
// batch mixing classic gate bootstraps and programmable (LUT) members:
// members with luts[m] == nil use the constant test vector mu[m] and no
// body offset (bit-exact with BootstrapBatch), members with luts[m] != nil
// are programmed from their own test-vector function with the half-slot
// offset of the msize message space (bit-exact with Evaluator.BootstrapLUT
// on the same input). The per-member accumulator initialization is the
// only divergence; the expensive key-streaming rotation is shared.
func (e *BatchEvaluator) BootstrapMixedBatch(dst []*lwe.Sample, mu []torus.Torus32, luts []func(m int) torus.Torus32, msize int, src []*lwe.Sample) error {
	if err := e.checkLens(dst, len(mu), src); err != nil {
		return err
	}
	if len(luts) != len(src) {
		return fmt.Errorf("boot: mixed batch length mismatch: luts=%d src=%d", len(luts), len(src))
	}
	b := len(src)
	if b == 0 {
		return nil
	}
	p := e.CK.Params
	twoN := 2 * p.PolyDegree
	if msize <= 0 || msize%2 != 0 {
		return fmt.Errorf("boot: LUT message space must be a positive even number, got %d", msize)
	}
	if msize > twoN {
		return fmt.Errorf("boot: LUT message space %d exceeds 2N = %d", msize, twoN)
	}
	e.grow(b)
	var start time.Time
	if e.Profile {
		start = time.Now()
	}
	n := p.PolyDegree
	halfSlot := torus.Torus32(uint32((uint64(1) << 32) / uint64(2*msize)))
	for m := 0; m < b; m++ {
		var barb int
		if luts[m] == nil {
			for j := range e.testvect.Coefs {
				e.testvect.Coefs[j] = mu[m]
			}
			barb = modSwitch2N(src[m].B, twoN)
		} else {
			for j := 0; j < n; j++ {
				mm := j * msize / twoN
				e.testvect.Coefs[j] = luts[m](mm % msize)
			}
			barb = modSwitch2N(src[m].B+halfSlot, twoN)
		}
		if barb != 0 {
			e.rotated.MulByXai(twoN-barb, e.testvect)
		} else {
			e.rotated.Copy(e.testvect)
		}
		e.accs[m].NoiselessTrivial(e.rotated)
	}
	e.blindRotateBatch(b, src)
	if e.Profile {
		e.Prof.BlindRotate += time.Since(start)
	}
	return e.extractAndSwitch(dst, b)
}

// BootstrapLUTBatch evaluates the programmable bootstrap dst[m] =
// Enc(lut(m_enc)) for every member of the batch, sharing one test-vector
// program across the batch (the LUT and message-space size are per-call,
// exactly one testvect fill instead of B). Semantics per member match
// Evaluator.BootstrapLUT, including the half-torus negacyclic convention.
func (e *BatchEvaluator) BootstrapLUTBatch(dst []*lwe.Sample, lut func(m int) torus.Torus32, msize int, src []*lwe.Sample) error {
	if err := e.checkLens(dst, len(src), src); err != nil {
		return err
	}
	b := len(src)
	if b == 0 {
		return nil
	}
	p := e.CK.Params
	twoN := 2 * p.PolyDegree
	if msize <= 0 || msize%2 != 0 {
		return fmt.Errorf("boot: LUT message space must be a positive even number, got %d", msize)
	}
	if msize > twoN {
		return fmt.Errorf("boot: LUT message space %d exceeds 2N = %d", msize, twoN)
	}
	e.grow(b)
	var start time.Time
	if e.Profile {
		start = time.Now()
	}
	n := p.PolyDegree
	for j := 0; j < n; j++ {
		m := j * msize / twoN
		e.testvect.Coefs[j] = lut(m % msize)
	}
	halfSlot := torus.Torus32(uint32((uint64(1) << 32) / uint64(2*msize)))
	for m := 0; m < b; m++ {
		barb := modSwitch2N(src[m].B+halfSlot, twoN)
		if barb != 0 {
			e.rotated.MulByXai(twoN-barb, e.testvect)
		} else {
			e.rotated.Copy(e.testvect)
		}
		e.accs[m].NoiselessTrivial(e.rotated)
	}
	e.blindRotateBatch(b, src)
	if e.Profile {
		e.Prof.BlindRotate += time.Since(start)
	}
	return e.extractAndSwitch(dst, b)
}
