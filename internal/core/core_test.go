package core

import (
	"sync"
	"testing"

	"pytfhe/internal/backend"
	"pytfhe/internal/circuit"
	"pytfhe/internal/params"
)

var (
	kpOnce sync.Once
	testKP *KeyPair
)

func keyPair(t testing.TB) *KeyPair {
	kpOnce.Do(func() {
		kp, err := GenerateKeysSeeded(params.Test(), []byte("core-test"))
		if err != nil {
			panic(err)
		}
		testKP = kp
	})
	return testKP
}

func comparator4() *circuit.Netlist {
	b := circuit.NewBuilder("cmp4", circuit.AllOptimizations())
	a := b.Inputs("a", 4)
	bb := b.Inputs("b", 4)
	// a > b unsigned via ripple borrow.
	borrow := b.Const(false)
	for i := 0; i < 4; i++ {
		axb := b.Xnor(a[i], bb[i])
		borrow = b.Mux(axb, borrow, bb[i])
	}
	b.Output("b_gt_a", borrow)
	return b.MustBuild()
}

func TestCompileRunEndToEnd(t *testing.T) {
	kp := keyPair(t)
	prog, err := Compile(comparator4())
	if err != nil {
		t.Fatal(err)
	}
	if len(prog.Binary) == 0 || prog.Stats.Gates == 0 {
		t.Fatalf("program not fully populated: %+v", prog.Stats)
	}
	for _, tc := range []struct {
		a, b uint64
	}{{3, 9}, {9, 3}, {7, 7}, {0, 15}} {
		bits := make([]bool, 8)
		for i := 0; i < 4; i++ {
			bits[i] = tc.a>>uint(i)&1 == 1
			bits[4+i] = tc.b>>uint(i)&1 == 1
		}
		want, err := RunPlain(prog, bits)
		if err != nil {
			t.Fatal(err)
		}
		if want[0] != (tc.b > tc.a) {
			t.Fatalf("plain comparator wrong for %v", tc)
		}
		outs, err := Run(prog, backend.NewSingle(kp.Cloud), kp.EncryptBits(bits))
		if err != nil {
			t.Fatal(err)
		}
		got := kp.DecryptBits(outs)
		if got[0] != want[0] {
			t.Fatalf("homomorphic comparator disagrees on %v", tc)
		}
	}
}

func TestLoadRoundTrip(t *testing.T) {
	prog, err := Compile(comparator4())
	if err != nil {
		t.Fatal(err)
	}
	back, err := Load(prog.Binary)
	if err != nil {
		t.Fatal(err)
	}
	if back.Stats.Gates != prog.Stats.Gates {
		t.Fatalf("gate count changed: %d vs %d", back.Stats.Gates, prog.Stats.Gates)
	}
	bits := []bool{true, false, true, false, false, true, false, false}
	a, _ := RunPlain(prog, bits)
	b, _ := RunPlain(back, bits)
	if a[0] != b[0] {
		t.Fatal("loaded program disagrees with original")
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := Load([]byte("not a program")); err == nil {
		t.Fatal("garbage accepted")
	}
}

func TestCalibrateGateTime(t *testing.T) {
	kp := keyPair(t)
	gt, err := CalibrateGateTime(kp, 2)
	if err != nil {
		t.Fatal(err)
	}
	if gt <= 0 {
		t.Fatalf("calibrated gate time %v", gt)
	}
}

func TestGenerateKeysValidatesParams(t *testing.T) {
	bad := params.Test()
	bad.PolyDegree = 3
	if _, err := GenerateKeysSeeded(bad, []byte("x")); err == nil {
		t.Fatal("invalid parameters accepted")
	}
}

// TestMessageRoundTrip checks EncryptMessage/DecryptMessage across message
// space sizes, including negative messages (which wrap to their canonical
// residue mod msize) and the m == msize boundary (which wraps to 0).
func TestMessageRoundTrip(t *testing.T) {
	kp := keyPair(t)
	for _, msize := range []int32{2, 4, 8, 16, 64} {
		messages := []int32{0, 1, msize / 2, msize - 1, msize, msize + 1, -1, -2, -msize}
		for _, m := range messages {
			want := ((m % msize) + msize) % msize
			ct := kp.EncryptMessage(m, msize)
			if got := kp.DecryptMessage(ct, msize); got != want {
				t.Errorf("msize %d: message %d decrypted to %d, want %d", msize, m, got, want)
			}
		}
	}
}

// TestMessageSlotsDistinct checks every slot of the largest supported test
// message space decodes to itself — fresh noise stays within half a slot.
func TestMessageSlotsDistinct(t *testing.T) {
	kp := keyPair(t)
	const msize = 64
	for m := int32(0); m < msize; m++ {
		ct := kp.EncryptMessage(m, msize)
		if got := kp.DecryptMessage(ct, msize); got != m {
			t.Errorf("slot %d decoded as %d", m, got)
		}
	}
}
