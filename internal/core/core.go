// Package core is the top-level PyTFHE API: key generation, program
// compilation (netlist → optimized PyTFHE binary), bit encryption, and
// execution over any backend. It is the surface the example applications
// and the command-line tools build on; the subsystems it composes live in
// the sibling packages (tfhe/*, circuit, synth, asm, backend, cluster,
// gpu, chiseltorch, vipbench, frameworks).
package core

import (
	"fmt"
	"time"

	"pytfhe/internal/asm"
	"pytfhe/internal/backend"
	"pytfhe/internal/circuit"
	"pytfhe/internal/logic"
	"pytfhe/internal/params"
	"pytfhe/internal/synth"
	"pytfhe/internal/tfhe/boot"
	"pytfhe/internal/tfhe/gate"
	"pytfhe/internal/tfhe/lwe"
	"pytfhe/internal/torus"
	"pytfhe/internal/trand"
)

// KeyPair bundles the client's secret key with the evaluation ("cloud")
// key that is shipped to the server.
type KeyPair struct {
	Secret *boot.SecretKey
	Cloud  *boot.CloudKey
}

// GenerateKeys creates a fresh key pair for the given parameter set using
// system entropy.
func GenerateKeys(p *params.GateParams) (*KeyPair, error) {
	return generate(p, trand.New())
}

// GenerateKeysSeeded creates a deterministic key pair — for tests,
// benchmarks and reproducible experiments only.
func GenerateKeysSeeded(p *params.GateParams, seed []byte) (*KeyPair, error) {
	return generate(p, trand.NewSeeded(seed))
}

func generate(p *params.GateParams, rng *trand.Source) (*KeyPair, error) {
	sk, ck, err := boot.GenerateKeys(p, rng)
	if err != nil {
		return nil, err
	}
	return &KeyPair{Secret: sk, Cloud: ck}, nil
}

// Program is a compiled TFHE program: the optimized netlist plus its
// PyTFHE binary encoding (Fig. 5).
type Program struct {
	Name    string
	Netlist *circuit.Netlist
	Binary  []byte
	Stats   circuit.Stats
}

// Compile optimizes a netlist through the synthesis pipeline and assembles
// the PyTFHE binary.
func Compile(nl *circuit.Netlist) (*Program, error) {
	res, err := synth.Optimize(nl)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	bin, err := asm.Assemble(res.Netlist)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	return &Program{
		Name:    nl.Name,
		Netlist: res.Netlist,
		Binary:  bin,
		Stats:   res.Netlist.ComputeStats(),
	}, nil
}

// CompileLUT is Compile through the LUT-clustering pipeline: after the
// standard passes converge, fanout-free cones of 2-input gates collapse
// into k-input programmable bootstraps (synth.OptimizeLUT), so the binary
// carries multi-input LUT records and every executor pays one bootstrap
// per cone instead of one per gate.
func CompileLUT(nl *circuit.Netlist) (*Program, error) {
	res, err := synth.OptimizeLUT(nl)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	bin, err := asm.Assemble(res.Netlist)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	return &Program{
		Name:    nl.Name,
		Netlist: res.Netlist,
		Binary:  bin,
		Stats:   res.Netlist.ComputeStats(),
	}, nil
}

// ApplyLUT re-synthesizes an already-loaded program through the LUT
// pipeline, reassembling the binary so downstream consumers (inspect,
// daemon registration, the shard exporter) see the multi-bit form. The
// rewrite is exact: lut-cluster only merges cones whose truth tables it
// re-derives, so outputs decrypt bit-identically to the source program's.
func ApplyLUT(p *Program) (*Program, error) {
	return CompileLUT(p.Netlist)
}

// LoadStrict decodes a PyTFHE binary after running the full static lint
// suite (asm.Lint: framing, cycles, wiring, gate types, outputs) over it.
// Any error-severity diagnostic rejects the program — the pre-flight gate
// for long homomorphic runs, exposed as `pytfhe run -strict`.
func LoadStrict(bin []byte) (*Program, error) {
	if err := asm.Lint(bin).Err(); err != nil {
		return nil, fmt.Errorf("core: strict load rejected: %w", err)
	}
	return Load(bin)
}

// Load decodes a PyTFHE binary back into a runnable program.
func Load(bin []byte) (*Program, error) {
	nl, err := asm.Disassemble(bin)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	return &Program{
		Name:    nl.Name,
		Netlist: nl,
		Binary:  append([]byte(nil), bin...),
		Stats:   nl.ComputeStats(),
	}, nil
}

// EncryptBits encrypts a plaintext bit vector under the secret key.
func (kp *KeyPair) EncryptBits(bits []bool) []*lwe.Sample {
	return backend.EncryptInputs(kp.Secret, bits)
}

// DecryptBits decrypts backend outputs.
func (kp *KeyPair) DecryptBits(cts []*lwe.Sample) []bool {
	return backend.DecryptOutputs(kp.Secret, cts)
}

// Run executes the program's netlist on the given backend.
func Run(p *Program, be backend.Backend, inputs []*lwe.Sample) ([]*lwe.Sample, error) {
	return be.Run(p.Netlist, inputs)
}

// RunPlain evaluates the program on cleartext bits (functional reference).
func RunPlain(p *Program, bits []bool) ([]bool, error) {
	return p.Netlist.Evaluate(bits)
}

// CalibrateGateTime measures the single-core cost of one bootstrapped gate
// under the cloud key by timing `samples` NAND evaluations. This is the
// calibration point every simulated platform uses.
func CalibrateGateTime(kp *KeyPair, samples int) (time.Duration, error) {
	if samples < 1 {
		samples = 1
	}
	eng := gate.NewEngine(kp.Cloud)
	rng := trand.NewSeeded([]byte("calibrate"))
	a := gate.NewCiphertext(kp.Cloud.Params)
	b := gate.NewCiphertext(kp.Cloud.Params)
	out := gate.NewCiphertext(kp.Cloud.Params)
	gate.Encrypt(a, true, kp.Secret, rng)
	gate.Encrypt(b, false, kp.Secret, rng)
	// Warm up FFT tables and caches.
	if err := eng.Binary(logic.NAND, out, a, b); err != nil {
		return 0, err
	}
	start := time.Now()
	for i := 0; i < samples; i++ {
		if err := eng.Binary(logic.NAND, out, a, b); err != nil {
			return 0, err
		}
	}
	return time.Since(start) / time.Duration(samples), nil
}

// EncryptMessage encrypts a multi-valued message m in a space of msize
// equally spaced torus slots (the encoding programmable bootstrapping
// consumes; gates use msize = 8 with messages ±1).
func (kp *KeyPair) EncryptMessage(m int32, msize int32) *lwe.Sample {
	ct := lwe.NewSample(kp.Secret.Params.LWEDimension)
	lwe.Encrypt(ct, torus.ModSwitchToTorus32(m, msize), kp.Secret.Params.LWEStdev, kp.Secret.LWE, trand.New())
	return ct
}

// DecryptMessage decodes a multi-valued message.
func (kp *KeyPair) DecryptMessage(ct *lwe.Sample, msize int32) int32 {
	return lwe.Decrypt(ct, kp.Secret.LWE, msize)
}
