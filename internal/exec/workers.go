package exec

import (
	"sync/atomic"
	"time"

	"pytfhe/internal/tfhe/boot"
	"pytfhe/internal/tfhe/gate"
)

// Workers is a persistent per-worker gate.Engine set over one cloud key
// (engines are not safe to share between goroutines), plus the cumulative
// busy-time accounting the drivers fold into Stats. Engines persist across
// runs — the in-process equivalent of the paper's long-lived Ray actors —
// so a Workers value is not safe for concurrent runs.
type Workers struct {
	ck      *boot.CloudKey
	engines []*gate.Engine
	busyNs  int64
}

// NewWorkers builds n engines (minimum 1) over ck.
func NewWorkers(ck *boot.CloudKey, n int) *Workers {
	if n < 1 {
		n = 1
	}
	engines := make([]*gate.Engine, n)
	for i := range engines {
		engines[i] = gate.NewEngine(ck)
	}
	return &Workers{ck: ck, engines: engines}
}

// N returns the worker count.
func (w *Workers) N() int { return len(w.engines) }

// Engine returns worker i's engine.
func (w *Workers) Engine(i int) *gate.Engine { return w.engines[i] }

// Engines returns the underlying engine slice for drivers that take one
// engine per worker directly (plan replay). Callers must not mutate it.
func (w *Workers) Engines() []*gate.Engine { return w.engines }

// CloudKey returns the evaluation key the engines run under.
func (w *Workers) CloudKey() *boot.CloudKey { return w.ck }

// Dim returns the LWE dimension of the key's parameter set.
func (w *Workers) Dim() int { return w.ck.Params.LWEDimension }

// ResetBusy clears the cumulative busy counter at the start of a run.
func (w *Workers) ResetBusy() { atomic.StoreInt64(&w.busyNs, 0) }

// AddBusy folds one worker's evaluation time into the run total.
func (w *Workers) AddBusy(d time.Duration) { atomic.AddInt64(&w.busyNs, int64(d)) }

// Busy returns the cumulative evaluation time across workers since the
// last ResetBusy.
func (w *Workers) Busy() time.Duration { return time.Duration(atomic.LoadInt64(&w.busyNs)) }
