package exec

import (
	"fmt"
	"sync"
)

// Sched selects a ready-driven scheduler's queue policy.
type Sched uint8

const (
	// SchedCritical pops the ready gate with the longest remaining
	// bootstrap-weighted dependency chain first. Under limited workers this
	// keeps the DAG's critical path moving and defers wide-but-shallow
	// side branches, which FIFO arrival order interleaves arbitrarily.
	// This is the default.
	SchedCritical Sched = iota
	// SchedFIFO pops gates in arrival order — the policy of the original
	// channel-based executor, kept as the A/B baseline (-sched fifo).
	SchedFIFO
)

func (s Sched) String() string {
	if s == SchedFIFO {
		return "fifo"
	}
	return "critical"
}

// ParseSched resolves a -sched flag value.
func ParseSched(s string) (Sched, error) {
	switch s {
	case "", "critical":
		return SchedCritical, nil
	case "fifo":
		return SchedFIFO, nil
	}
	return 0, fmt.Errorf("exec: unknown scheduler %q (want critical or fifo)", s)
}

// Queue is the blocking multi-producer multi-consumer ready set shared by
// the ready-driven schedulers (Async's per-run queue of gate indices,
// Shared's cross-run queue of tasks). With a less function it is a
// max-heap under that ordering; without one it degenerates to a FIFO
// ring. Finish wakes all waiters for both normal completion and abort,
// replacing the old stop-channel + close(chan) pair.
type Queue[T any] struct {
	mu    sync.Mutex
	cond  *sync.Cond
	items []T
	head  int               // FIFO consumption point; unused in heap mode
	less  func(a, b T) bool // non-nil → heap popping the least element first
	done  bool
}

// NewQueue returns a queue with the given initial capacity. A nil less
// gives FIFO order; otherwise Pop returns the least element under less
// (pass a descending comparison for a max-heap).
func NewQueue[T any](capacity int, less func(a, b T) bool) *Queue[T] {
	q := &Queue[T]{items: make([]T, 0, capacity), less: less}
	q.cond = sync.NewCond(&q.mu)
	return q
}

// Push enqueues v and wakes one blocked Pop.
func (q *Queue[T]) Push(v T) {
	q.mu.Lock()
	q.items = append(q.items, v)
	if q.less != nil {
		q.up(len(q.items) - 1)
	}
	q.mu.Unlock()
	q.cond.Signal()
}

// Pop blocks until an item is available or the queue is finished; the
// second result is false once Finish has been called.
func (q *Queue[T]) Pop() (T, bool) {
	var zero T
	q.mu.Lock()
	defer q.mu.Unlock()
	for {
		if q.done {
			return zero, false
		}
		if v, ok := q.popLocked(); ok {
			return v, true
		}
		q.cond.Wait()
	}
}

// TryPop returns an item only if one is immediately available: the
// non-blocking drain used by the batching driver to top up a bootstrap
// batch without ever waiting (an empty queue is a flush, not a stall). It
// also returns false once the queue is finished.
func (q *Queue[T]) TryPop() (T, bool) {
	var zero T
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.done {
		return zero, false
	}
	return q.popLocked()
}

// popLocked removes and returns the next item under q.mu, or reports false
// when the queue is empty.
func (q *Queue[T]) popLocked() (T, bool) {
	var zero T
	if q.less != nil {
		if len(q.items) > 0 {
			top := q.items[0]
			last := len(q.items) - 1
			q.items[0] = q.items[last]
			q.items[last] = zero // release any pointers in the popped slot
			q.items = q.items[:last]
			if last > 0 {
				q.down(0)
			}
			return top, true
		}
	} else if q.head < len(q.items) {
		v := q.items[q.head]
		q.items[q.head] = zero
		q.head++
		if q.head == len(q.items) {
			q.items = q.items[:0]
			q.head = 0
		}
		return v, true
	}
	return zero, false
}

// Len reports the number of queued items.
func (q *Queue[T]) Len() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.items) - q.head
}

// Finish makes every current and future Pop return false and wakes all
// blocked workers. Called when the last gate completes or the run aborts;
// pushes racing with an abort land in the slice but are never popped.
func (q *Queue[T]) Finish() {
	q.mu.Lock()
	q.done = true
	q.mu.Unlock()
	q.cond.Broadcast()
}

func (q *Queue[T]) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !q.less(q.items[i], q.items[parent]) {
			return
		}
		q.items[i], q.items[parent] = q.items[parent], q.items[i]
		i = parent
	}
}

func (q *Queue[T]) down(i int) {
	n := len(q.items)
	for {
		l, r := 2*i+1, 2*i+2
		best := i
		if l < n && q.less(q.items[l], q.items[best]) {
			best = l
		}
		if r < n && q.less(q.items[r], q.items[best]) {
			best = r
		}
		if best == i {
			return
		}
		q.items[i], q.items[best] = q.items[best], q.items[i]
		i = best
	}
}
