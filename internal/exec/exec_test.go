package exec

import (
	"errors"
	"sync"
	"testing"

	"pytfhe/internal/circuit"
	"pytfhe/internal/logic"
	"pytfhe/internal/tfhe/lwe"
)

func TestQueuePriorityOrder(t *testing.T) {
	prio := []int64{5, 1, 9, 3, 7}
	q := NewQueue[int32](5, func(a, b int32) bool { return prio[a] > prio[b] })
	for gi := range prio {
		q.Push(int32(gi))
	}
	want := []int32{2, 4, 0, 3, 1} // descending priority
	for _, w := range want {
		gi, ok := q.Pop()
		if !ok || gi != w {
			t.Fatalf("pop = %d,%v; want %d", gi, ok, w)
		}
	}
	q.Finish()
	if _, ok := q.Pop(); ok {
		t.Fatal("pop after finish must report done")
	}
}

func TestQueueFIFOOrder(t *testing.T) {
	q := NewQueue[int32](4, nil)
	for _, gi := range []int32{3, 1, 2, 0} {
		q.Push(gi)
	}
	if q.Len() != 4 {
		t.Fatalf("len = %d, want 4", q.Len())
	}
	for _, w := range []int32{3, 1, 2, 0} {
		gi, ok := q.Pop()
		if !ok || gi != w {
			t.Fatalf("pop = %d,%v; want %d", gi, ok, w)
		}
	}
	if q.Len() != 0 {
		t.Fatalf("len after drain = %d, want 0", q.Len())
	}
}

// TestQueueBlockingPop: a Pop blocked on an empty queue is woken by a
// later Push, and Finish releases all remaining waiters.
func TestQueueBlockingPop(t *testing.T) {
	q := NewQueue[int32](1, nil)
	var wg sync.WaitGroup
	got := make(chan int32, 1)
	wg.Add(1)
	go func() {
		defer wg.Done()
		gi, ok := q.Pop()
		if ok {
			got <- gi
		}
		// Second pop parks until Finish.
		if _, ok := q.Pop(); ok {
			t.Error("second pop should observe finish")
		}
	}()
	q.Push(42)
	if gi := <-got; gi != 42 {
		t.Fatalf("blocked pop woke with %d", gi)
	}
	q.Finish()
	wg.Wait()
}

// TestCriticalDepth: on a chain a→b→c plus a side gate off a, the chain
// head must carry the full remaining bootstrap count and the side gate a
// shallower one, so the scheduler prefers the chain.
func TestCriticalDepth(t *testing.T) {
	b := circuit.NewBuilder("depth", circuit.NoOptimizations())
	x := b.Input("x")
	y := b.Input("y")
	g0 := b.Gate(logic.NAND, x, y) // chain head, remaining 3
	g1 := b.Gate(logic.NAND, g0, y)
	g2 := b.Gate(logic.NAND, g1, y)
	side := b.Gate(logic.AND, x, y) // independent, remaining 1
	b.Output("chain", g2)
	b.Output("side", side)
	nl := b.MustBuild()

	deps := NewDeps(nl)
	rem := CriticalDepth(nl, deps.Children)
	if rem[0] != 3 || rem[1] != 2 || rem[2] != 1 || rem[3] != 1 {
		t.Fatalf("remaining depths = %v, want [3 2 1 1]", rem)
	}
	if got := deps.Ready(); len(got) != 2 || got[0] != 0 || got[1] != 3 {
		t.Fatalf("initial ready set = %v, want [0 3]", got)
	}
}

func TestParseSched(t *testing.T) {
	if s, err := ParseSched("critical"); err != nil || s != SchedCritical {
		t.Fatalf("critical: %v %v", s, err)
	}
	if s, err := ParseSched("fifo"); err != nil || s != SchedFIFO {
		t.Fatalf("fifo: %v %v", s, err)
	}
	if s, err := ParseSched(""); err != nil || s != SchedCritical {
		t.Fatalf("default: %v %v", s, err)
	}
	if _, err := ParseSched("lifo"); err == nil {
		t.Fatal("bad policy accepted")
	}
}

func TestCheckRawInputs(t *testing.T) {
	good := []*lwe.Sample{lwe.NewSample(4), lwe.NewSample(4)}
	if err := CheckRawInputs(good, 2, 4); err != nil {
		t.Fatalf("valid inputs rejected: %v", err)
	}
	if err := CheckRawInputs(good, 3, 4); err == nil {
		t.Fatal("short inputs not rejected")
	}
	if err := CheckRawInputs([]*lwe.Sample{lwe.NewSample(4), nil}, 2, 4); !errors.Is(err, ErrNilInput) {
		t.Fatalf("nil input error = %v, want ErrNilInput", err)
	}
	if err := CheckRawInputs(good, 2, 8); err == nil {
		t.Fatal("wrong dimension not rejected")
	}
	// A non-positive dim skips the dimension check (the Plain backend).
	if err := CheckRawInputs(good, 2, 0); err != nil {
		t.Fatalf("dim 0 must skip the dimension check: %v", err)
	}
	if err := CheckRawInputs([]*lwe.Sample{nil}, 1, 0); !errors.Is(err, ErrNilInput) {
		t.Fatalf("dim 0 must still reject nil inputs: %v", err)
	}
}

func TestPoolRecycles(t *testing.T) {
	p := NewPool(4)
	a := p.Get()
	if a.Dimension() != 4 {
		t.Fatalf("dimension = %d, want 4", a.Dimension())
	}
	p.Put(a)
	if b := p.Get(); b != a {
		t.Fatal("free-list sample not reused")
	}
	p.Put(nil) // no-op
	if s := p.Get(); s == nil || s == a {
		t.Fatal("empty free list must allocate fresh")
	}
}

func TestArenaAccounting(t *testing.T) {
	a := NewArena(4)
	s1, s2 := a.Get(), a.Get()
	if a.Live() != 2 || a.HighWater() != 2 {
		t.Fatalf("live=%d highWater=%d, want 2/2", a.Live(), a.HighWater())
	}
	a.Put(s1)
	a.Put(s2)
	if a.Live() != 0 || a.HighWater() != 2 {
		t.Fatalf("after put: live=%d highWater=%d, want 0/2", a.Live(), a.HighWater())
	}
	if s := a.Get(); s != s2 && s != s1 {
		t.Fatal("arena free list not reused")
	}
	if a.HighWater() != 2 {
		t.Fatalf("high water moved to %d on re-get within peak", a.HighWater())
	}
}

// TestStateReleaseHoldsOutputs: an output node's fan-out reference keeps
// its ciphertext out of the recycler until Collect reads it, even when
// the node also feeds interior gates.
func TestStateReleaseHoldsOutputs(t *testing.T) {
	b := circuit.NewBuilder("hold", circuit.NoOptimizations())
	x := b.Input("x")
	y := b.Input("y")
	mid := b.Gate(logic.NAND, x, y)
	last := b.Gate(logic.AND, mid, y) // mid is both operand and output
	b.Output("mid", mid)
	b.Output("last", last)
	nl := b.MustBuild()

	st, err := NewState(nl, []*lwe.Sample{lwe.NewSample(4), lwe.NewSample(4)}, 4)
	if err != nil {
		t.Fatal(err)
	}
	mem := NewPool(4)
	st.Values[mid] = mem.Get()
	st.Values[last] = mem.Get()
	st.Release(mid, mem) // the interior read drains
	if st.Values[mid] == nil {
		t.Fatal("output reference must survive the interior release")
	}
	st.Release(x, mem) // inputs are never recycled
	if st.Values[x] == nil {
		t.Fatal("input slot must never be released")
	}
	outs, err := st.Collect(4)
	if err != nil {
		t.Fatal(err)
	}
	if len(outs) != 2 {
		t.Fatalf("collected %d outputs, want 2", len(outs))
	}
	st.Release(mid, nil) // the output reference; nil Memory just drops it
	if st.Values[mid] != nil {
		t.Fatal("last release must clear the slot")
	}
}
