package exec

import "pytfhe/internal/circuit"

// Deps is the dependency bookkeeping of the ready-driven schedulers,
// mirroring sched.SimulateAsync: for every node the gate indices that
// consume it, and for every gate a counter of unproduced gate operands.
// A unary gate reading node X twice counts X twice, matching
// circuit.FanOut. Pending counters are decremented atomically by the
// drivers as operands are produced.
type Deps struct {
	Children [][]int32
	Pending  []int32
}

// NewDeps builds the children lists and pending counters for nl.
func NewDeps(nl *circuit.Netlist) *Deps {
	d := &Deps{
		Children: make([][]int32, nl.NumNodes()+1),
		Pending:  make([]int32, len(nl.Gates)),
	}
	for i := range nl.Gates {
		g := &nl.Gates[i]
		for k := 0; k < g.NumOperands(); k++ {
			if in := g.Operand(k); nl.GateIndex(in) >= 0 {
				d.Pending[i]++
				d.Children[in] = append(d.Children[in], int32(i))
			}
		}
	}
	return d
}

// Ready returns the gate indices whose operands are all primary inputs or
// constants — the initial ready set. Callers must collect it before the
// first push: workers start decrementing pending counters the moment a
// task is visible.
func (d *Deps) Ready() []int32 {
	var ready []int32
	for i, p := range d.Pending {
		if p == 0 {
			ready = append(ready, int32(i))
		}
	}
	return ready
}

// CriticalDepth computes, for every gate, the number of bootstrapped gates
// on the longest dependency chain from that gate to any sink — the gate's
// remaining critical-path cost, the priority key of SchedCritical.
// Bootstraps dominate runtime by orders of magnitude, so linear gates
// weigh zero. Gates are in topological order (Validate forbids forward
// references), so one reverse sweep over the children lists suffices.
func CriticalDepth(nl *circuit.Netlist, children [][]int32) []int64 {
	rem := make([]int64, len(nl.Gates))
	for i := len(nl.Gates) - 1; i >= 0; i-- {
		var longest int64
		for _, c := range children[nl.GateID(i)] {
			if rem[c] > longest {
				longest = rem[c]
			}
		}
		var w int64
		if nl.Gates[i].NeedsBootstrap() {
			w = 1
		}
		rem[i] = w + longest
	}
	return rem
}
