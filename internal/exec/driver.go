package exec

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"pytfhe/internal/circuit"
	"pytfhe/internal/tfhe/gate"
	"pytfhe/internal/tfhe/lwe"
)

// MemStrategy builds one Memory per worker for the concurrent drivers —
// NewPoolMemory for refcounted free lists, or a capture hook in tests.
type MemStrategy func(dim int) Memory

// NewPoolMemory is the default MemStrategy: a refcounted free-list Pool.
func NewPoolMemory(dim int) Memory { return NewPool(dim) }

// RunSequential is the single-core driver: gates evaluate in netlist
// order on one engine, recycling operands through mem the moment their
// fan-out drains. This is the Single backend's policy.
func RunSequential(eng *gate.Engine, nl *circuit.Netlist, inputs []*lwe.Sample, mem Memory) ([]*lwe.Sample, Stats, error) {
	dim := eng.Params().LWEDimension
	st, err := NewState(nl, inputs, dim)
	if err != nil {
		return nil, Stats{}, err
	}
	start := time.Now()
	stats := Stats{Gates: len(nl.Gates)}
	for i, g := range nl.Gates {
		id := nl.GateID(i)
		out := mem.Get()
		if err := eng.Binary(g.Kind, out, st.Values[g.A], st.Values[g.B]); err != nil {
			mem.Put(out)
			return nil, Stats{}, fmt.Errorf("exec: gate %d: %w", id, err)
		}
		if g.Kind.NeedsBootstrap() {
			stats.Bootstraps++
		}
		st.Values[id] = out
		st.Release(g.A, mem)
		st.Release(g.B, mem)
	}
	outs, err := st.Collect(dim)
	if err != nil {
		return nil, Stats{}, err
	}
	stats.Finish(start)
	return outs, stats, nil
}

// RunLevels is the wavefront driver implementing Algorithm 1 of the
// paper: a BFS over the gate DAG that submits every ready gate of a
// level to the workers and barriers before the next level. This is the
// Pool backend's policy. mem is touched only between barriers (output
// slots are claimed before a level starts, operands released after it
// completes), so a single non-concurrent Memory serves all workers and
// no worker can free a ciphertext another is still reading.
func RunLevels(ws *Workers, nl *circuit.Netlist, inputs []*lwe.Sample, mem Memory) ([]*lwe.Sample, Stats, error) {
	dim := ws.Dim()
	st, err := NewState(nl, inputs, dim)
	if err != nil {
		return nil, Stats{}, err
	}
	start := time.Now()
	levels := nl.Levels()
	stats := Stats{Gates: len(nl.Gates), Levels: len(levels), Workers: ws.N()}
	for _, g := range nl.Gates {
		if g.Kind.NeedsBootstrap() {
			stats.Bootstraps++
		}
	}

	var firstErr error
	var errMu sync.Mutex
	for _, level := range levels {
		for _, gi := range level {
			st.Values[nl.GateID(gi)] = mem.Get()
		}
		// Workers pull the next gate via an atomic counter rather than
		// pre-sliced chunks: with static chunking one slow chunk (a run of
		// bootstrapped gates landing in the same slice) stalls the whole
		// level barrier while the other workers sit idle.
		var next int64
		var wg sync.WaitGroup
		nw := ws.N()
		if nw > len(level) {
			nw = len(level)
		}
		for w := 0; w < nw; w++ {
			wg.Add(1)
			go func(eng *gate.Engine) {
				defer wg.Done()
				for {
					i := int(atomic.AddInt64(&next, 1)) - 1
					if i >= len(level) {
						return
					}
					gi := level[i]
					g := nl.Gates[gi]
					if err := eng.Binary(g.Kind, st.Values[nl.GateID(gi)], st.Values[g.A], st.Values[g.B]); err != nil {
						errMu.Lock()
						if firstErr == nil {
							firstErr = fmt.Errorf("exec: gate %d: %w", nl.GateID(gi), err)
						}
						errMu.Unlock()
						return
					}
				}
			}(ws.Engine(w))
		}
		wg.Wait()
		if firstErr != nil {
			return nil, Stats{}, firstErr
		}
		// Operand releases happen after the barrier so no worker frees a
		// ciphertext another worker is still reading.
		for _, gi := range level {
			st.Release(nl.Gates[gi].A, mem)
			st.Release(nl.Gates[gi].B, mem)
		}
	}
	outs, err := st.Collect(dim)
	if err != nil {
		return nil, Stats{}, err
	}
	stats.Finish(start)
	return outs, stats, nil
}

// RunReady is the barrier-free, dependency-driven driver: every gate
// carries an atomic pending-operand counter, finished gates decrement
// their children's counters, and a counter hitting zero pushes the child
// onto a blocking ready Queue served by the persistent workers. This is
// the Async backend's policy and what internal/sched's SimulateAsync
// models. Each worker owns a private Memory from newMem, so recycling is
// lock-free on the hot path; peak memory still tracks the live frontier
// of the DAG.
func RunReady(ws *Workers, nl *circuit.Netlist, inputs []*lwe.Sample, sched Sched, newMem MemStrategy) ([]*lwe.Sample, Stats, error) {
	dim := ws.Dim()
	st, err := NewState(nl, inputs, dim)
	if err != nil {
		return nil, Stats{}, err
	}
	start := time.Now()
	nGates := len(nl.Gates)
	stats := Stats{Gates: nGates, Workers: ws.N()}
	for _, g := range nl.Gates {
		if g.Kind.NeedsBootstrap() {
			stats.Bootstraps++
		}
	}

	deps := NewDeps(nl)

	// The ready queue holds every gate index at most once. Under
	// SchedCritical it is a max-heap on each gate's remaining
	// critical-path depth; under SchedFIFO it preserves arrival order.
	var less func(a, b int32) bool
	if sched == SchedCritical {
		prio := CriticalDepth(nl, deps.Children)
		less = func(a, b int32) bool { return prio[a] > prio[b] }
	}
	ready := NewQueue[int32](nGates, less)
	readyAt := make([]int64, nGates) // ns timestamp of enqueue, for QueueWait
	now := time.Now().UnixNano()
	for _, gi := range deps.Ready() {
		readyAt[gi] = now
		ready.Push(gi)
	}
	if nGates == 0 {
		ready.Finish()
	}

	var (
		done        int32 // gates fully processed; the last one finishes ready
		queueWaitNs int64
		runErr      error
		errOnce     sync.Once
	)
	fail := func(err error) {
		errOnce.Do(func() {
			runErr = err
			ready.Finish()
		})
	}

	ws.ResetBusy()
	workers := ws.N()
	if workers > nGates {
		workers = nGates
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(eng *gate.Engine) {
			defer wg.Done()
			mem := newMem(dim)
			var busy time.Duration
			defer func() { ws.AddBusy(busy) }()
			for {
				gi, ok := ready.Pop()
				if !ok {
					return
				}
				popped := time.Now()
				atomic.AddInt64(&queueWaitNs, popped.UnixNano()-readyAt[gi])
				g := nl.Gates[gi]
				id := nl.GateID(int(gi))
				out := mem.Get()
				if err := eng.Binary(g.Kind, out, st.Values[g.A], st.Values[g.B]); err != nil {
					mem.Put(out)
					fail(fmt.Errorf("exec: gate %d: %w", id, err))
					return
				}
				// Publish the result, then wake children: the atomic
				// decrement plus the queue's mutex order the write to
				// Values[id] before any child's read of it.
				st.Values[id] = out
				for _, child := range deps.Children[id] {
					if atomic.AddInt32(&deps.Pending[child], -1) == 0 {
						readyAt[child] = time.Now().UnixNano()
						ready.Push(child)
					}
				}
				st.Release(g.A, mem)
				st.Release(g.B, mem)
				busy += time.Since(popped)
				if atomic.AddInt32(&done, 1) == int32(nGates) {
					// All gates evaluated, so every push has already
					// happened; finishing wakes the idle workers.
					ready.Finish()
				}
			}
		}(ws.Engine(w))
	}
	wg.Wait()
	if runErr != nil {
		return nil, Stats{}, runErr
	}

	outs, err := st.Collect(dim)
	if err != nil {
		return nil, Stats{}, err
	}
	stats.QueueWait = time.Duration(queueWaitNs)
	stats.WorkerBusy = ws.Busy()
	stats.Finish(start)
	return outs, stats, nil
}
