package exec

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"pytfhe/internal/circuit"
	"pytfhe/internal/logic"
	"pytfhe/internal/tfhe/gate"
	"pytfhe/internal/tfhe/lwe"
)

// MemStrategy builds one Memory per worker for the concurrent drivers —
// NewPoolMemory for refcounted free lists, or a capture hook in tests.
type MemStrategy func(dim int) Memory

// NewPoolMemory is the default MemStrategy: a refcounted free-list Pool.
func NewPoolMemory(dim int) Memory { return NewPool(dim) }

// applyGate evaluates one netlist gate — classic 2-input or k-input LUT —
// on eng, reading operands from the state's value table.
func applyGate(eng *gate.Engine, st *State, g *circuit.Gate, out *lwe.Sample) error {
	if g.IsLUT() {
		var ins [logic.MaxLUTArity]*lwe.Sample
		n := g.NumOperands()
		for k := 0; k < n; k++ {
			ins[k] = st.Values[g.Operand(k)]
		}
		return eng.LUT(n, g.TT, out, ins[:n]...)
	}
	return eng.Binary(g.Kind, out, st.Values[g.A], st.Values[g.B])
}

// releaseOperands drops one fan-out reference per operand slot of g,
// recycling drained ciphertexts through mem.
func releaseOperands(st *State, g *circuit.Gate, mem Memory) {
	for k := 0; k < g.NumOperands(); k++ {
		st.Release(g.Operand(k), mem)
	}
}

// countGates pre-tallies the bootstrap and LUT totals of a netlist into
// stats — every driver reports the same static counts.
func countGates(nl *circuit.Netlist, stats *Stats) {
	for i := range nl.Gates {
		g := &nl.Gates[i]
		if g.NeedsBootstrap() {
			stats.Bootstraps++
		}
		if g.IsLUT() {
			stats.LUTs++
		}
	}
}

// RunSequential is the single-core driver: gates evaluate in netlist
// order on one engine, recycling operands through mem the moment their
// fan-out drains. This is the Single backend's policy.
func RunSequential(eng *gate.Engine, nl *circuit.Netlist, inputs []*lwe.Sample, mem Memory) ([]*lwe.Sample, Stats, error) {
	dim := eng.Params().LWEDimension
	st, err := NewState(nl, inputs, dim)
	if err != nil {
		return nil, Stats{}, err
	}
	start := time.Now()
	stats := Stats{Gates: len(nl.Gates)}
	countGates(nl, &stats)
	for i := range nl.Gates {
		g := &nl.Gates[i]
		id := nl.GateID(i)
		out := mem.Get()
		if err := applyGate(eng, st, g, out); err != nil {
			mem.Put(out)
			return nil, Stats{}, fmt.Errorf("exec: gate %d: %w", id, err)
		}
		st.Values[id] = out
		releaseOperands(st, g, mem)
	}
	outs, err := st.Collect(dim)
	if err != nil {
		return nil, Stats{}, err
	}
	stats.Finish(start)
	return outs, stats, nil
}

// RunLevels is the wavefront driver implementing Algorithm 1 of the
// paper: a BFS over the gate DAG that submits every ready gate of a
// level to the workers and barriers before the next level. This is the
// Pool backend's policy. mem is touched only between barriers (output
// slots are claimed before a level starts, operands released after it
// completes), so a single non-concurrent Memory serves all workers and
// no worker can free a ciphertext another is still reading.
func RunLevels(ws *Workers, nl *circuit.Netlist, inputs []*lwe.Sample, mem Memory) ([]*lwe.Sample, Stats, error) {
	dim := ws.Dim()
	st, err := NewState(nl, inputs, dim)
	if err != nil {
		return nil, Stats{}, err
	}
	start := time.Now()
	levels := nl.Levels()
	stats := Stats{Gates: len(nl.Gates), Levels: len(levels), Workers: ws.N()}
	countGates(nl, &stats)

	var firstErr error
	var errMu sync.Mutex
	for _, level := range levels {
		for _, gi := range level {
			st.Values[nl.GateID(gi)] = mem.Get()
		}
		// Workers pull the next gate via an atomic counter rather than
		// pre-sliced chunks: with static chunking one slow chunk (a run of
		// bootstrapped gates landing in the same slice) stalls the whole
		// level barrier while the other workers sit idle.
		var next int64
		var wg sync.WaitGroup
		nw := ws.N()
		if nw > len(level) {
			nw = len(level)
		}
		for w := 0; w < nw; w++ {
			wg.Add(1)
			go func(eng *gate.Engine) {
				defer wg.Done()
				for {
					i := int(atomic.AddInt64(&next, 1)) - 1
					if i >= len(level) {
						return
					}
					gi := level[i]
					if err := applyGate(eng, st, &nl.Gates[gi], st.Values[nl.GateID(gi)]); err != nil {
						errMu.Lock()
						if firstErr == nil {
							firstErr = fmt.Errorf("exec: gate %d: %w", nl.GateID(gi), err)
						}
						errMu.Unlock()
						return
					}
				}
			}(ws.Engine(w))
		}
		wg.Wait()
		if firstErr != nil {
			return nil, Stats{}, firstErr
		}
		// Operand releases happen after the barrier so no worker frees a
		// ciphertext another worker is still reading.
		for _, gi := range level {
			releaseOperands(st, &nl.Gates[gi], mem)
		}
	}
	outs, err := st.Collect(dim)
	if err != nil {
		return nil, Stats{}, err
	}
	stats.Finish(start)
	return outs, stats, nil
}

// RunReady is the barrier-free, dependency-driven driver: every gate
// carries an atomic pending-operand counter, finished gates decrement
// their children's counters, and a counter hitting zero pushes the child
// onto a blocking ready Queue served by the persistent workers. This is
// the Async backend's policy and what internal/sched's SimulateAsync
// models. Each worker owns a private Memory from newMem, so recycling is
// lock-free on the hot path; peak memory still tracks the live frontier
// of the DAG.
func RunReady(ws *Workers, nl *circuit.Netlist, inputs []*lwe.Sample, sched Sched, newMem MemStrategy) ([]*lwe.Sample, Stats, error) {
	return RunReadyBatch(ws, nl, inputs, sched, newMem, 1)
}

// RunReadyBatch is RunReady with batched bootstrap dispatch: a worker that
// pops a bootstrapped gate drains up to batch-1 more ready bootstrapped
// gates from the queue (without ever blocking — an empty queue flushes the
// batch rather than stalling it) and evaluates them in one
// gate.BinaryBatch call, amortizing the bootstrapping-key stream across
// the whole group. The queue's Sched order is respected: the drain takes
// gates in exactly the order single-gate workers would have, so
// SchedCritical still advances the critical path first. Free gates popped
// during a drain are evaluated inline immediately — their children may
// become ready in time to join the very batch being assembled. batch <= 1
// reproduces RunReady exactly.
func RunReadyBatch(ws *Workers, nl *circuit.Netlist, inputs []*lwe.Sample, sched Sched, newMem MemStrategy, batch int) ([]*lwe.Sample, Stats, error) {
	dim := ws.Dim()
	st, err := NewState(nl, inputs, dim)
	if err != nil {
		return nil, Stats{}, err
	}
	start := time.Now()
	if batch < 1 {
		batch = 1
	}
	nGates := len(nl.Gates)
	stats := Stats{Gates: nGates, Workers: ws.N(), BatchSize: batch}
	countGates(nl, &stats)

	deps := NewDeps(nl)

	// The ready queue holds every gate index at most once. Under
	// SchedCritical it is a max-heap on each gate's remaining
	// critical-path depth; under SchedFIFO it preserves arrival order.
	var less func(a, b int32) bool
	if sched == SchedCritical {
		prio := CriticalDepth(nl, deps.Children)
		less = func(a, b int32) bool { return prio[a] > prio[b] }
	}
	ready := NewQueue[int32](nGates, less)
	readyAt := make([]int64, nGates) // ns timestamp of enqueue, for QueueWait
	now := time.Now().UnixNano()
	for _, gi := range deps.Ready() {
		readyAt[gi] = now
		ready.Push(gi)
	}
	if nGates == 0 {
		ready.Finish()
	}

	var (
		done        int32 // gates fully processed; the last one finishes ready
		queueWaitNs int64
		runErr      error
		errOnce     sync.Once

		// Batch occupancy (atomics; only touched when batch > 1).
		nBatches     int64
		batchedBoots int64
		fullFlushes  int64
		drainFlushes int64
	)
	fail := func(err error) {
		errOnce.Do(func() {
			runErr = err
			ready.Finish()
		})
	}

	// publish stores one finished gate's result, wakes its children, and
	// recycles drained operands. The atomic decrement plus the queue's
	// mutex order the write to Values[id] before any child's read of it.
	// The last published gate finishes the queue: all gates evaluated means
	// every push has already happened, so finishing wakes idle workers.
	publish := func(gi int32, out *lwe.Sample, mem Memory) {
		g := &nl.Gates[gi]
		id := nl.GateID(int(gi))
		st.Values[id] = out
		for _, child := range deps.Children[id] {
			if atomic.AddInt32(&deps.Pending[child], -1) == 0 {
				readyAt[child] = time.Now().UnixNano()
				ready.Push(child)
			}
		}
		releaseOperands(st, g, mem)
		if atomic.AddInt32(&done, 1) == int32(nGates) {
			ready.Finish()
		}
	}
	// evalOne is the single-gate path: the whole policy of RunReady, and
	// the inline fallback the batch drain uses for free gates.
	evalOne := func(eng *gate.Engine, mem Memory, gi int32) bool {
		out := mem.Get()
		if err := applyGate(eng, st, &nl.Gates[gi], out); err != nil {
			mem.Put(out)
			fail(fmt.Errorf("exec: gate %d: %w", nl.GateID(int(gi)), err))
			return false
		}
		publish(gi, out, mem)
		return true
	}

	ws.ResetBusy()
	workers := ws.N()
	if workers > nGates {
		workers = nGates
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(eng *gate.Engine) {
			defer wg.Done()
			mem := newMem(dim)
			var busy time.Duration
			defer func() { ws.AddBusy(busy) }()
			var (
				gis  []int32
				ops  []gate.Op
				outs []*lwe.Sample
				avs  []*lwe.Sample
				bvs  []*lwe.Sample
				cvs  []*lwe.Sample
			)
			if batch > 1 {
				gis = make([]int32, 0, batch)
				ops = make([]gate.Op, 0, batch)
				outs = make([]*lwe.Sample, 0, batch)
				avs = make([]*lwe.Sample, 0, batch)
				bvs = make([]*lwe.Sample, 0, batch)
				cvs = make([]*lwe.Sample, 0, batch)
			}
			for {
				gi, ok := ready.Pop()
				if !ok {
					return
				}
				popped := time.Now()
				atomic.AddInt64(&queueWaitNs, popped.UnixNano()-readyAt[gi])
				if batch <= 1 || !nl.Gates[gi].NeedsBootstrap() {
					if !evalOne(eng, mem, gi) {
						return
					}
					busy += time.Since(popped)
					continue
				}
				// Batched dispatch: seed with the popped gate, then top up
				// from the ready queue without blocking. Free gates taken
				// during the drain run inline — their children may become
				// ready in time to join this very batch.
				gis, ops, outs = gis[:0], ops[:0], outs[:0]
				avs, bvs, cvs = avs[:0], bvs[:0], cvs[:0]
				collect := func(gj int32) {
					g := &nl.Gates[gj]
					gis = append(gis, gj)
					var cv *lwe.Sample
					if g.IsLUT() {
						ops = append(ops, gate.Op{TT: g.TT, Arity: g.Arity})
						if g.Arity >= 3 {
							cv = st.Values[g.C]
						}
					} else {
						ops = append(ops, gate.Op{Kind: g.Kind})
					}
					outs = append(outs, mem.Get())
					avs = append(avs, st.Values[g.A])
					bvs = append(bvs, st.Values[g.B])
					cvs = append(cvs, cv)
				}
				collect(gi)
				for len(gis) < batch {
					gj, ok := ready.TryPop()
					if !ok {
						break
					}
					atomic.AddInt64(&queueWaitNs, time.Now().UnixNano()-readyAt[gj])
					if !nl.Gates[gj].NeedsBootstrap() {
						if !evalOne(eng, mem, gj) {
							return
						}
						continue
					}
					collect(gj)
				}
				b := len(gis)
				if err := eng.OpBatch(ops[:b], outs[:b], avs[:b], bvs[:b], cvs[:b]); err != nil {
					for _, out := range outs[:b] {
						mem.Put(out)
					}
					fail(fmt.Errorf("exec: gate %d: %w", nl.GateID(int(gis[0])), err))
					return
				}
				atomic.AddInt64(&nBatches, 1)
				atomic.AddInt64(&batchedBoots, int64(b))
				if b == batch {
					atomic.AddInt64(&fullFlushes, 1)
				} else {
					atomic.AddInt64(&drainFlushes, 1)
				}
				for m := 0; m < b; m++ {
					publish(gis[m], outs[m], mem)
				}
				busy += time.Since(popped)
			}
		}(ws.Engine(w))
	}
	wg.Wait()
	if runErr != nil {
		return nil, Stats{}, runErr
	}

	outs, err := st.Collect(dim)
	if err != nil {
		return nil, Stats{}, err
	}
	stats.QueueWait = time.Duration(queueWaitNs)
	stats.WorkerBusy = ws.Busy()
	stats.Batches = int(nBatches)
	stats.BatchedBootstraps = int(batchedBoots)
	stats.BatchFullFlushes = int(fullFlushes)
	stats.BatchDrainFlushes = int(drainFlushes)
	stats.Finish(start)
	return outs, stats, nil
}
