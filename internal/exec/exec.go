// Package exec is the shared execution core behind every in-process CPU
// backend. The five executors of internal/backend (Single, Pool, Async,
// Shared, Planned) and the distributed coordinator of internal/cluster are
// scheduling *policies*; the machinery they schedule over — typed input
// validation, the node→ciphertext value table with fan-out refcount
// release, the recycling Memory strategies (refcounted free-list Pool,
// compile-time liveness Arena), per-worker engine sets, the blocking ready
// Queue, and output collection — lives here exactly once. A new policy
// (sharded, batched, ...) is a driver over these primitives, not another
// copy of the substrate.
//
// The split mirrors the compiler/runtime factoring of CHET and MATCHA's
// treatment of bootstrap scheduling as a policy over a fixed kernel
// substrate: one execution core, many schedulers.
package exec

import (
	"errors"
	"fmt"
	"sync/atomic"

	"pytfhe/internal/circuit"
	"pytfhe/internal/tfhe/gate"
	"pytfhe/internal/tfhe/lwe"
)

// ErrNilInput marks a nil ciphertext among a run's inputs. Before this
// check existed, a nil *lwe.Sample slipped through to in.Dimension() and
// panicked inside the executor; now every backend rejects it up front with
// an error callers can classify via errors.Is.
var ErrNilInput = errors.New("exec: nil input ciphertext")

// CheckInputs validates a netlist run's inputs: count, non-nil, and LWE
// dimension.
func CheckInputs(nl *circuit.Netlist, inputs []*lwe.Sample, dim int) error {
	return CheckRawInputs(inputs, nl.NumInputs, dim)
}

// CheckRawInputs is CheckInputs for callers that know only the expected
// input count (the plan replay path validates against the plan, not the
// netlist). A non-positive dim skips the dimension check — the Plain
// backend takes whatever dimension the trivial samples carry.
func CheckRawInputs(inputs []*lwe.Sample, want, dim int) error {
	if len(inputs) != want {
		return fmt.Errorf("exec: %d inputs supplied, want %d", len(inputs), want)
	}
	for i, in := range inputs {
		if in == nil {
			return fmt.Errorf("%w: input %d", ErrNilInput, i)
		}
		if dim > 0 && in.Dimension() != dim {
			return fmt.Errorf("exec: input %d has dimension %d, want %d", i, in.Dimension(), dim)
		}
	}
	return nil
}

// State is the per-run value table every driver executes over: one slot per
// netlist node (inputs installed at construction), plus the atomic fan-out
// refcounts that drive ciphertext recycling. Inputs are never recycled (the
// caller owns them) and outputs hold one fan-out reference each
// (circuit.FanOut counts them), so a result can never be returned to a
// Memory before Collect reads it, even when the output node also feeds
// interior gates.
type State struct {
	nl *circuit.Netlist
	// Values is the node-indexed ciphertext table; drivers publish each
	// gate's output at Values[nl.GateID(i)].
	Values []*lwe.Sample
	refs   []int32
}

// NewState validates the inputs and builds the value table and refcounts
// for one run of nl.
func NewState(nl *circuit.Netlist, inputs []*lwe.Sample, dim int) (*State, error) {
	if err := CheckInputs(nl, inputs, dim); err != nil {
		return nil, err
	}
	st := &State{nl: nl, Values: make([]*lwe.Sample, nl.NumNodes()+1)}
	for i, in := range inputs {
		st.Values[i+1] = in
	}
	fan := nl.FanOut()
	st.refs = make([]int32, len(fan))
	for i, f := range fan {
		st.refs[i] = int32(f)
	}
	return st, nil
}

// Release drops one fan-out reference to a node after a reader finished
// with it; the last reader hands the ciphertext to mem (nil mem just drops
// the table entry for the garbage collector — the cluster coordinator's
// ciphertexts come from remote workers and have no local free list).
// Constants and inputs are never released. The decrement is atomic, so any
// number of workers may release concurrently; every reader decrements only
// after finishing its own evaluation, so nobody can still be reading a
// slot that reaches zero.
func (s *State) Release(id circuit.NodeID, mem Memory) {
	if id <= 0 || s.nl.IsInput(id) {
		return
	}
	if atomic.AddInt32(&s.refs[id], -1) == 0 {
		if mem != nil {
			mem.Put(s.Values[id])
		}
		s.Values[id] = nil
	}
}

// Collect materializes the run's output ciphertexts from the value table.
func (s *State) Collect(dim int) ([]*lwe.Sample, error) {
	return CollectOutputs(dim, s.nl.Outputs, func(id circuit.NodeID) *lwe.Sample {
		return s.Values[id]
	})
}

// CollectOutputs is the single output-collection implementation: ids are
// circuit node IDs or plan refs (both use the ConstFalse=-1 / ConstTrue=-2
// sentinels), lookup resolves a non-constant id to its table entry, and
// every output is copied into a fresh ciphertext the caller owns.
func CollectOutputs[Ref ~int32 | ~int64](dim int, ids []Ref, lookup func(Ref) *lwe.Sample) ([]*lwe.Sample, error) {
	outs := make([]*lwe.Sample, len(ids))
	for i, id := range ids {
		out := lwe.NewSample(dim)
		switch {
		case id == Ref(circuit.ConstTrue):
			gate.Trivial(out, true)
		case id == Ref(circuit.ConstFalse):
			gate.Trivial(out, false)
		default:
			v := lookup(id)
			if v == nil {
				return nil, fmt.Errorf("exec: output %d references freed node %d", i, id)
			}
			out.Copy(v)
		}
		outs[i] = out
	}
	return outs, nil
}
