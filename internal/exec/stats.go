package exec

import "time"

// Stats captures execution metrics from the most recent run, populated
// uniformly by every driver. GatesPerSec counts all gates (free gates
// included); BootstrapsPerSec counts only bootstrapped evaluations — the
// figure of merit FHE papers report, and what an earlier revision
// mislabeled as GatesPerSec.
type Stats struct {
	Gates            int           // gates evaluated (including free gates)
	Bootstraps       int           // bootstrapped gate evaluations
	LUTs             int           // multi-input LUT evaluations (each one programmable bootstrap, included in Bootstraps)
	Levels           int           // wavefronts executed (0 for ready-driven drivers)
	Elapsed          time.Duration // wall-clock for the run
	GatesPerSec      float64       // Gates / Elapsed
	BootstrapsPerSec float64       // Bootstraps / Elapsed

	// Breakdowns recorded by the concurrent drivers (the level driver
	// leaves them zero except Workers; the ready driver fills them all).
	Workers      int           // worker goroutines used
	QueueWait    time.Duration // cumulative time gates sat in the ready queue
	AvgQueueWait time.Duration // QueueWait / Gates
	WorkerBusy   time.Duration // cumulative time workers spent evaluating
	Utilization  float64       // WorkerBusy / (Elapsed * Workers)

	// Batch occupancy, recorded by the batch-draining ready driver
	// (RunReadyBatch with batch > 1; zero otherwise). A dispatch flushes
	// "full" when it collected the configured batch size and "drain" when
	// the ready queue ran dry first; the fill average is the amortization
	// the kernel actually saw.
	BatchSize         int     // configured batch limit (0 or 1 = unbatched)
	Batches           int     // batched bootstrap dispatches
	BatchedBootstraps int     // bootstrapped gates covered by those dispatches
	BatchFullFlushes  int     // dispatches that filled to BatchSize
	BatchDrainFlushes int     // dispatches flushed early on an empty queue
	AvgBatchFill      float64 // BatchedBootstraps / Batches
}

// Finish stamps the elapsed time since start and computes every derived
// rate from the counters accumulated so far.
func (s *Stats) Finish(start time.Time) {
	s.Elapsed = time.Since(start)
	if secs := s.Elapsed.Seconds(); secs > 0 {
		s.GatesPerSec = float64(s.Gates) / secs
		s.BootstrapsPerSec = float64(s.Bootstraps) / secs
	}
	if s.Gates > 0 {
		s.AvgQueueWait = s.QueueWait / time.Duration(s.Gates)
	}
	if s.Elapsed > 0 && s.Workers > 0 {
		s.Utilization = float64(s.WorkerBusy) / (float64(s.Elapsed) * float64(s.Workers))
	}
	if s.Batches > 0 {
		s.AvgBatchFill = float64(s.BatchedBootstraps) / float64(s.Batches)
	}
}
