package exec_test

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"pytfhe/internal/backend"
	"pytfhe/internal/circuit"
	"pytfhe/internal/exec"
	"pytfhe/internal/logic"
	"pytfhe/internal/params"
	"pytfhe/internal/tfhe/boot"
	"pytfhe/internal/tfhe/lwe"
	"pytfhe/internal/trand"
)

var (
	keyOnce sync.Once
	testSK  *boot.SecretKey
	testCK  *boot.CloudKey
)

func keys(t testing.TB) (*boot.SecretKey, *boot.CloudKey) {
	keyOnce.Do(func() {
		rng := trand.NewSeeded([]byte("exec-matrix-keys"))
		sk, ck, err := boot.GenerateKeys(params.Test(), rng)
		if err != nil {
			panic(err)
		}
		testSK, testCK = sk, ck
	})
	return testSK, testCK
}

// randomDeepNetlist builds a randomized DAG whose outputs include nodes that
// are *also* operands of later gates — the shape that catches a recycler
// freeing a result before output collection reads it.
func randomDeepNetlist(rng *rand.Rand, nGates int) *circuit.Netlist {
	b := circuit.NewBuilder("rand-deep", circuit.NoOptimizations())
	nodes := []circuit.NodeID{b.Input("a"), b.Input("b"), b.Input("c"), b.Input("d"), b.Input("e")}
	for i := 0; i < nGates-1; i++ {
		kind := logic.TFHEGates()[rng.Intn(11)]
		// Bias toward recent nodes so the DAG gets deep and irregular.
		var x circuit.NodeID
		if rng.Intn(2) == 0 {
			x = nodes[len(nodes)-1]
		} else {
			x = nodes[rng.Intn(len(nodes))]
		}
		y := nodes[rng.Intn(len(nodes))]
		nodes = append(nodes, b.Gate(kind, x, y))
	}
	// An output that is also an interior operand: the final gate reads mid,
	// and mid is exported as an output alongside the final gate itself.
	mid := nodes[len(nodes)/2]
	last := b.Gate(logic.AND, mid, nodes[len(nodes)-1])
	b.Output("mid", mid)
	b.Output("last", last)
	b.Output("other", nodes[len(nodes)-2])
	return b.MustBuild()
}

// TestMatrixAgreement is the combinatorial agreement test the execution
// core makes possible: every driver (sequential, level-barrier, ready
// critical-path, ready FIFO) × every Memory strategy (free-list Pool,
// liveness Arena) × worker counts {1, 2, 3, 4, 7} must decrypt
// bit-identically to the plaintext reference on randomized netlists whose
// outputs are also interior gate operands.
func TestMatrixAgreement(t *testing.T) {
	sk, ck := keys(t)
	rng := rand.New(rand.NewSource(1234))
	workerCounts := []int{1, 2, 3, 4, 7}
	memories := []struct {
		name string
		mk   exec.MemStrategy
	}{
		{"pool", exec.NewPoolMemory},
		{"arena", func(dim int) exec.Memory { return exec.NewArena(dim) }},
	}

	for trial := 0; trial < 2; trial++ {
		nl := randomDeepNetlist(rng, 14)
		in := make([]bool, nl.NumInputs)
		for i := range in {
			in[i] = rng.Intn(2) == 1
		}
		want, err := nl.Evaluate(in)
		if err != nil {
			t.Fatal(err)
		}
		check := func(label string, outs []*lwe.Sample, err error) {
			t.Helper()
			if err != nil {
				t.Fatalf("%s trial %d: %v", label, trial, err)
			}
			got := backend.DecryptOutputs(sk, outs)
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("%s trial %d output %d: got %v want %v", label, trial, i, got[i], want[i])
				}
			}
		}

		for _, mem := range memories {
			eng := exec.NewWorkers(ck, 1).Engine(0)
			outs, _, err := exec.RunSequential(eng, nl, backend.EncryptInputs(sk, in), mem.mk(ck.Params.LWEDimension))
			check("seq/"+mem.name, outs, err)

			for _, w := range workerCounts {
				ws := exec.NewWorkers(ck, w)
				outs, _, err := exec.RunLevels(ws, nl, backend.EncryptInputs(sk, in), mem.mk(ws.Dim()))
				check(fmt.Sprintf("levels/%s/%dw", mem.name, w), outs, err)

				for _, sched := range []exec.Sched{exec.SchedCritical, exec.SchedFIFO} {
					outs, _, err := exec.RunReady(ws, nl, backend.EncryptInputs(sk, in), sched, mem.mk)
					check(fmt.Sprintf("ready-%s/%s/%dw", sched, mem.name, w), outs, err)

					for _, batch := range []int{2, 8} {
						outs, stats, err := exec.RunReadyBatch(ws, nl, backend.EncryptInputs(sk, in), sched, mem.mk, batch)
						check(fmt.Sprintf("ready-%s-b%d/%s/%dw", sched, batch, mem.name, w), outs, err)
						if stats.BatchedBootstraps > 0 && stats.Batches == 0 {
							t.Fatalf("batch driver recorded %d batched bootstraps but 0 batches", stats.BatchedBootstraps)
						}
						if stats.Batches != stats.BatchFullFlushes+stats.BatchDrainFlushes {
							t.Fatalf("flush counters %d+%d do not sum to %d batches",
								stats.BatchFullFlushes, stats.BatchDrainFlushes, stats.Batches)
						}
					}
				}
			}
		}
	}
}

// TestBackendsAgreeWithPlain runs all five CPU backends through their
// public API against the Plain reference — the end-to-end proof that every
// backend really executes through the shared core.
func TestBackendsAgreeWithPlain(t *testing.T) {
	sk, ck := keys(t)
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 2; trial++ {
		nl := randomDeepNetlist(rng, 12)
		in := make([]bool, nl.NumInputs)
		for i := range in {
			in[i] = rng.Intn(2) == 1
		}
		plainOuts, err := backend.Plain{}.Run(nl, backend.TrivialInputs(ck.Params.LWEDimension, in))
		if err != nil {
			t.Fatal(err)
		}
		want := make([]bool, len(plainOuts))
		for i, ct := range plainOuts {
			want[i] = int32(ct.B) > 0 // trivial samples decode by sign
		}

		backends := []backend.Backend{backend.NewSingle(ck)}
		for _, w := range []int{1, 2, 4} {
			backends = append(backends,
				backend.NewPool(ck, w),
				backend.NewAsyncSched(ck, w, backend.SchedCritical),
				backend.NewAsyncSched(ck, w, backend.SchedFIFO),
				backend.NewPlanned(ck, w))
		}
		for _, be := range backends {
			outs, err := be.Run(nl, backend.EncryptInputs(sk, in))
			if err != nil {
				t.Fatalf("%s: %v", be.Name(), err)
			}
			got := backend.DecryptOutputs(sk, outs)
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("%s trial %d output %d: got %v want %v", be.Name(), trial, i, got[i], want[i])
				}
			}
		}

		sh := backend.NewShared(2)
		key, err := sh.RegisterKey(ck)
		if err != nil {
			t.Fatal(err)
		}
		outs, err := sh.Submit(context.Background(), key, nl, backend.EncryptInputs(sk, in))
		sh.Close()
		if err != nil {
			t.Fatalf("shared: %v", err)
		}
		got := backend.DecryptOutputs(sk, outs)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("shared trial %d output %d: got %v want %v", trial, i, got[i], want[i])
			}
		}
	}
}

// TestNilInputRejectedEverywhere: a nil ciphertext among the inputs used
// to panic inside checkInputs; every backend must now return the typed
// exec.ErrNilInput instead.
func TestNilInputRejectedEverywhere(t *testing.T) {
	sk, ck := keys(t)
	b := circuit.NewBuilder("nil-in", circuit.NoOptimizations())
	x := b.Input("x")
	y := b.Input("y")
	b.Output("o", b.Gate(logic.NAND, x, y))
	nl := b.MustBuild()

	good := backend.EncryptInputs(sk, []bool{true, false})
	bad := []*lwe.Sample{good[0], nil}

	runs := []struct {
		name string
		run  func() error
	}{
		{"plain", func() error { _, err := backend.Plain{}.Run(nl, bad); return err }},
		{"single", func() error { _, err := backend.NewSingle(ck).Run(nl, bad); return err }},
		{"pool", func() error { _, err := backend.NewPool(ck, 2).Run(nl, bad); return err }},
		{"async", func() error { _, err := backend.NewAsync(ck, 2).Run(nl, bad); return err }},
		{"plan", func() error { _, err := backend.NewPlanned(ck, 2).Run(nl, bad); return err }},
		{"shared", func() error {
			sh := backend.NewShared(1)
			defer sh.Close()
			key, err := sh.RegisterKey(ck)
			if err != nil {
				return err
			}
			_, err = sh.Submit(context.Background(), key, nl, bad)
			return err
		}},
	}
	for _, tc := range runs {
		if err := tc.run(); !errors.Is(err, exec.ErrNilInput) {
			t.Fatalf("%s: error = %v, want exec.ErrNilInput", tc.name, err)
		}
		if err := tc.run(); !errors.Is(err, backend.ErrNilInput) {
			t.Fatalf("%s: backend.ErrNilInput alias must match too (got %v)", tc.name, err)
		}
	}
}
