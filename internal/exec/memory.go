package exec

import (
	"sync"

	"pytfhe/internal/tfhe/lwe"
)

// Memory is a ciphertext allocation strategy. Get hands out a sample the
// caller owns until it is published into a State value table, returned, or
// handed back with Put — the ownership contract the leaked-ciphertext
// analyzer of internal/lint enforces statically. Pool is single-owner
// (concurrent drivers give each worker its own); Arena is internally
// locked, because replay workers share one arena and allocate slots
// lazily on first touch.
type Memory interface {
	Get() *lwe.Sample
	Put(*lwe.Sample)
}

// Pool is the refcounted executors' Memory: a free list fed by State
// releases, so peak allocation follows the live frontier of the DAG rather
// than the whole program (a 2M-gate MNIST netlist would otherwise hold
// ~5 GB). Not safe for concurrent use.
type Pool struct {
	dim  int
	free []*lwe.Sample
}

// NewPool returns a free-list pool allocating ciphertexts of the given LWE
// dimension.
func NewPool(dim int) *Pool { return &Pool{dim: dim} }

// Get implements Memory.
func (p *Pool) Get() *lwe.Sample {
	if n := len(p.free); n > 0 {
		s := p.free[n-1]
		p.free = p.free[:n-1]
		return s
	}
	return lwe.NewSample(p.dim)
}

// Put implements Memory.
func (p *Pool) Put(s *lwe.Sample) {
	if s != nil {
		p.free = append(p.free, s)
	}
}

// Arena is the plan replay Memory: slots are bound once per plan by the
// compile-time liveness analysis instead of refcounted at runtime, so it
// additionally accounts the live population — HighWater is the figure the
// Planned backend and pytfhed report as arena occupancy. Safe for
// concurrent use: replay workers share one arena, and the lock is
// amortized against multi-millisecond bootstraps.
type Arena struct {
	mu        sync.Mutex
	dim       int
	free      []*lwe.Sample
	live      int
	highWater int
}

// NewArena returns a liveness arena allocating ciphertexts of the given
// LWE dimension.
func NewArena(dim int) *Arena { return &Arena{dim: dim} }

// Get implements Memory.
func (a *Arena) Get() *lwe.Sample {
	a.mu.Lock()
	a.live++
	if a.live > a.highWater {
		a.highWater = a.live
	}
	if n := len(a.free); n > 0 {
		s := a.free[n-1]
		a.free = a.free[:n-1]
		a.mu.Unlock()
		return s
	}
	a.mu.Unlock()
	return lwe.NewSample(a.dim)
}

// Put implements Memory.
func (a *Arena) Put(s *lwe.Sample) {
	if s == nil {
		return
	}
	a.mu.Lock()
	a.live--
	a.free = append(a.free, s)
	a.mu.Unlock()
}

// Live returns the number of arena ciphertexts currently held out.
func (a *Arena) Live() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.live
}

// HighWater returns the peak number of ciphertexts simultaneously held out
// of the arena over its lifetime.
func (a *Arena) HighWater() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.highWater
}
