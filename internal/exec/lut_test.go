package exec_test

import (
	"fmt"
	"math/rand"
	"testing"

	"pytfhe/internal/backend"
	"pytfhe/internal/circuit"
	"pytfhe/internal/exec"
	"pytfhe/internal/tfhe/lwe"
)

// lutNetlist builds a netlist holding arity-3 LUT nodes alongside classic
// and free gates: a full-adder-ish mix where the parity and majority of
// three inputs come from single LUT gates.
func lutNetlist() *circuit.Netlist {
	b := circuit.NewBuilder("lut-mix", circuit.AllOptimizations())
	x, y, z, w := b.Input("x"), b.Input("y"), b.Input("z"), b.Input("w")
	par := b.LUT(0x96, x, y, z) // x ⊕ y ⊕ z
	maj := b.LUT(0xE8, x, y, z) // majority
	spread := b.LUT(0x7E, par, maj, w)
	b.Output("p", par)
	b.Output("m", b.And(maj, w))
	b.Output("s", b.Xor(spread, b.Not(x)))
	return b.MustBuild()
}

// TestLUTDriverAgreement runs a LUT-bearing netlist through every driver ×
// scheduler × batch size and checks decryption against the cleartext
// reference, plus the LUT evaluation counter.
func TestLUTDriverAgreement(t *testing.T) {
	sk, ck := keys(t)
	nl := lutNetlist()
	wantLUTs := nl.ComputeStats().LUTs
	if wantLUTs == 0 {
		t.Fatal("setup: netlist has no LUT gates")
	}
	rng := rand.New(rand.NewSource(4242))
	for trial := 0; trial < 4; trial++ {
		in := make([]bool, nl.NumInputs)
		for i := range in {
			in[i] = rng.Intn(2) == 1
		}
		want, err := nl.Evaluate(in)
		if err != nil {
			t.Fatal(err)
		}
		check := func(label string, outs []*lwe.Sample, stats exec.Stats, err error) {
			t.Helper()
			if err != nil {
				t.Fatalf("%s trial %d: %v", label, trial, err)
			}
			if stats.LUTs != wantLUTs {
				t.Fatalf("%s trial %d: stats report %d LUTs, want %d", label, trial, stats.LUTs, wantLUTs)
			}
			got := backend.DecryptOutputs(sk, outs)
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("%s trial %d output %d: got %v want %v", label, trial, i, got[i], want[i])
				}
			}
		}

		eng := exec.NewWorkers(ck, 1).Engine(0)
		outs, stats, err := exec.RunSequential(eng, nl, backend.EncryptInputs(sk, in), exec.NewPoolMemory(ck.Params.LWEDimension))
		check("seq", outs, stats, err)

		for _, w := range []int{1, 3} {
			ws := exec.NewWorkers(ck, w)
			outs, stats, err := exec.RunLevels(ws, nl, backend.EncryptInputs(sk, in), exec.NewPoolMemory(ws.Dim()))
			check(fmt.Sprintf("levels/%dw", w), outs, stats, err)
			for _, sched := range []exec.Sched{exec.SchedCritical, exec.SchedFIFO} {
				for _, batch := range []int{1, 2, 8} {
					outs, stats, err := exec.RunReadyBatch(ws, nl, backend.EncryptInputs(sk, in), sched, exec.NewPoolMemory, batch)
					check(fmt.Sprintf("ready-%s-b%d/%dw", sched, batch, w), outs, stats, err)
				}
			}
		}
	}
}
