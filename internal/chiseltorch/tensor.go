package chiseltorch

import (
	"fmt"

	"pytfhe/internal/hdl"
)

// Tensor is a multi-dimensional array whose elements are wire buses in the
// graph's circuit. Tensors are immutable; operations return new tensors.
type Tensor struct {
	Shape []int
	dt    DType
	data  []hdl.Bus // row-major
}

// DType returns the element type.
func (t *Tensor) DType() DType { return t.dt }

// NumElements returns the product of the shape.
func (t *Tensor) NumElements() int { return numElements(t.Shape) }

func numElements(shape []int) int {
	n := 1
	for _, d := range shape {
		n *= d
	}
	return n
}

// At returns the element bus at the given indices.
func (t *Tensor) At(idx ...int) hdl.Bus {
	return t.data[t.offset(idx)]
}

func (t *Tensor) offset(idx []int) int {
	if len(idx) != len(t.Shape) {
		panic(fmt.Sprintf("chiseltorch: %d indices for rank-%d tensor", len(idx), len(t.Shape)))
	}
	off := 0
	for i, x := range idx {
		if x < 0 || x >= t.Shape[i] {
			panic(fmt.Sprintf("chiseltorch: index %d out of range for dim %d (size %d)", x, i, t.Shape[i]))
		}
		off = off*t.Shape[i] + x
	}
	return off
}

// Graph accumulates the circuit for one model compilation.
type Graph struct {
	M  *hdl.Module
	DT DType
}

// NewGraph starts a fresh compilation with the given default element type.
func NewGraph(name string, dt DType) *Graph {
	return &Graph{M: hdl.New(name), DT: dt}
}

// InputTensor declares an encrypted input tensor: one input bus per
// element, named name[i0][i1]....
func (g *Graph) InputTensor(name string, shape ...int) *Tensor {
	n := numElements(shape)
	t := &Tensor{Shape: append([]int(nil), shape...), dt: g.DT, data: make([]hdl.Bus, n)}
	for i := 0; i < n; i++ {
		t.data[i] = g.M.InputBus(fmt.Sprintf("%s%s", name, indexSuffix(shape, i)), g.DT.Width())
	}
	return t
}

// ConstTensor bakes plaintext values (weights) into the circuit as
// constants, quantized to the graph's data type.
func (g *Graph) ConstTensor(values []float64, shape ...int) *Tensor {
	n := numElements(shape)
	if len(values) != n {
		panic(fmt.Sprintf("chiseltorch: %d values for shape %v (%d elements)", len(values), shape, n))
	}
	t := &Tensor{Shape: append([]int(nil), shape...), dt: g.DT, data: make([]hdl.Bus, n)}
	for i, v := range values {
		t.data[i] = g.DT.Const(g.M, v)
	}
	return t
}

// Output registers every element of t as a circuit output under name.
func (g *Graph) Output(name string, t *Tensor) {
	for i, bus := range t.data {
		g.M.OutputBus(fmt.Sprintf("%s%s", name, indexSuffix(t.Shape, i)), bus)
	}
}

func indexSuffix(shape []int, flat int) string {
	if len(shape) == 0 {
		return ""
	}
	idx := make([]int, len(shape))
	for i := len(shape) - 1; i >= 0; i-- {
		idx[i] = flat % shape[i]
		flat /= shape[i]
	}
	s := ""
	for _, x := range idx {
		s += fmt.Sprintf("[%d]", x)
	}
	return s
}

// newLike allocates an empty tensor with the given shape and the graph's
// element type.
func (g *Graph) newLike(shape []int) *Tensor {
	return &Tensor{Shape: append([]int(nil), shape...), dt: g.DT, data: make([]hdl.Bus, numElements(shape))}
}

func sameShape(a, b *Tensor) bool {
	if len(a.Shape) != len(b.Shape) {
		return false
	}
	for i := range a.Shape {
		if a.Shape[i] != b.Shape[i] {
			return false
		}
	}
	return true
}

// EncodeTensor quantizes real values into the plaintext bit vector layout
// the compiled circuit expects (element order matching InputTensor).
func EncodeTensor(dt DType, values []float64) []bool {
	w := dt.Width()
	bits := make([]bool, 0, len(values)*w)
	for _, v := range values {
		enc := dt.Encode(v)
		for i := 0; i < w; i++ {
			bits = append(bits, enc>>uint(i)&1 == 1)
		}
	}
	return bits
}

// DecodeTensor inverts EncodeTensor on circuit outputs.
func DecodeTensor(dt DType, bits []bool) []float64 {
	w := dt.Width()
	if len(bits)%w != 0 {
		panic(fmt.Sprintf("chiseltorch: %d bits is not a multiple of element width %d", len(bits), w))
	}
	out := make([]float64, len(bits)/w)
	for e := range out {
		var raw uint64
		for i := 0; i < w; i++ {
			if bits[e*w+i] {
				raw |= 1 << uint(i)
			}
		}
		out[e] = dt.Decode(raw)
	}
	return out
}
