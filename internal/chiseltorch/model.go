package chiseltorch

import (
	"fmt"
	"math"

	"pytfhe/internal/circuit"
	"pytfhe/internal/synth"
)

// Model is a named network with a chosen data type, mirroring the
// ChiselTorch declaration style of Fig. 4:
//
//	model := chiseltorch.Model{
//	    Name:  "mnist",
//	    DType: chiseltorch.NewFixed(8, 8),
//	    Net: chiseltorch.Sequential{
//	        &chiseltorch.Conv2d{...},
//	        chiseltorch.ReLU{},
//	        chiseltorch.MaxPool2d{Kernel: 3, Stride: 1},
//	        chiseltorch.Flatten{},
//	        &chiseltorch.Linear{In: 576, Out: 10, ...},
//	    },
//	}
type Model struct {
	Name  string
	DType DType
	Net   Layer
}

// Compiled is the result of compiling a model: the optimized gate netlist
// plus the metadata needed to encode inputs and decode outputs. InDType is
// the model's element type; OutDType may differ when the network ends in an
// index-producing op such as argmax.
type Compiled struct {
	Netlist     *circuit.Netlist
	InDType     DType
	OutDType    DType
	InputShape  []int
	OutputShape []int
}

// Compile runs the model's forward pass symbolically over an input of the
// given shape, producing an optimized gate-level netlist.
func (m *Model) Compile(inputShape ...int) (*Compiled, error) {
	if m.Net == nil {
		return nil, fmt.Errorf("chiseltorch: model %q has no layers", m.Name)
	}
	dt := m.DType
	if dt == nil {
		dt = NewFixed(8, 8)
	}
	g := NewGraph(m.Name, dt)
	x := g.InputTensor("x", inputShape...)
	y, err := m.Net.Forward(g, x)
	if err != nil {
		return nil, fmt.Errorf("chiseltorch: compiling %q: %w", m.Name, err)
	}
	g.Output("y", y)
	nl, err := g.M.Build()
	if err != nil {
		return nil, fmt.Errorf("chiseltorch: building netlist for %q: %w", m.Name, err)
	}
	res, err := synth.Optimize(nl)
	if err != nil {
		return nil, fmt.Errorf("chiseltorch: optimizing %q: %w", m.Name, err)
	}
	return &Compiled{
		Netlist:     res.Netlist,
		InDType:     dt,
		OutDType:    y.dt,
		InputShape:  append([]int(nil), inputShape...),
		OutputShape: append([]int(nil), y.Shape...),
	}, nil
}

// EncodeInput quantizes a real-valued input tensor (row-major) into the
// plaintext bit vector the netlist consumes.
func (c *Compiled) EncodeInput(values []float64) ([]bool, error) {
	if len(values) != numElements(c.InputShape) {
		return nil, fmt.Errorf("chiseltorch: %d input values for shape %v", len(values), c.InputShape)
	}
	return EncodeTensor(c.InDType, values), nil
}

// DecodeOutput converts the netlist's output bits back to real values.
func (c *Compiled) DecodeOutput(bits []bool) []float64 {
	return DecodeTensor(c.OutDType, bits)
}

// Infer runs the compiled netlist on plaintext values — the functional
// reference for the homomorphic backends and for accuracy measurements.
func (c *Compiled) Infer(values []float64) ([]float64, error) {
	in, err := c.EncodeInput(values)
	if err != nil {
		return nil, err
	}
	out, err := c.Netlist.Evaluate(in)
	if err != nil {
		return nil, err
	}
	return c.DecodeOutput(out), nil
}

// --- self-attention, built purely from Table I primitives ---

// SelfAttention is a single-head self-attention block over input
// [Seq, Hidden]: scores = (x Wq)(x Wk)^T / sqrt(Hidden), out = A (x Wv),
// demonstrating that non-native layers compose from reshape/matmul/
// transpose exactly as the paper describes for BERT-style models.
//
// The softmax over scores is replaced by ReLU masking (negative scores
// drop out) followed by a constant normalization — a standard
// FHE-friendly substitution, since data-oblivious exp/normalize circuits
// would dominate the gate count (documented in DESIGN.md).
type SelfAttention struct {
	Seq    int
	Hidden int
	Wq     []float64 // [Hidden][Hidden]
	Wk     []float64
	Wv     []float64
}

// Name implements Layer.
func (a *SelfAttention) Name() string {
	return fmt.Sprintf("SelfAttention(seq=%d, hidden=%d)", a.Seq, a.Hidden)
}

// Forward implements Layer.
func (a *SelfAttention) Forward(g *Graph, x *Tensor) (*Tensor, error) {
	if len(x.Shape) != 2 || x.Shape[0] != a.Seq || x.Shape[1] != a.Hidden {
		return nil, fmt.Errorf("chiseltorch: %s applied to shape %v", a.Name(), x.Shape)
	}
	n := a.Hidden * a.Hidden
	if len(a.Wq) != n || len(a.Wk) != n || len(a.Wv) != n {
		return nil, fmt.Errorf("chiseltorch: %s weight shapes are wrong", a.Name())
	}
	wq := g.ConstTensor(a.Wq, a.Hidden, a.Hidden)
	wk := g.ConstTensor(a.Wk, a.Hidden, a.Hidden)
	wv := g.ConstTensor(a.Wv, a.Hidden, a.Hidden)

	q := g.MatMul(x, wq) // [Seq, Hidden]
	k := g.MatMul(x, wk)
	v := g.MatMul(x, wv)

	scores := g.MatMul(q, g.Transpose(k, 0, 1)) // [Seq, Seq]
	scores = g.MulScalar(scores, 1/math.Sqrt(float64(a.Hidden)))
	attn := g.Relu(scores)                     // FHE-friendly softmax substitute
	attn = g.MulScalar(attn, 1/float64(a.Seq)) // constant normalization
	return g.MatMul(attn, v), nil
}
