package chiseltorch

import (
	"fmt"

	"pytfhe/internal/hdl"
)

// This file extends the layer library beyond Table I with FHE-friendly
// activation functions. Smooth activations (sigmoid, tanh) lower to their
// piecewise-linear "hard" variants, which cost comparisons and muxes
// instead of the polynomial-approximation circuits that would dominate the
// gate count — the standard approach for gate-level FHE (and what
// HardSigmoid/HardTanh compute in PyTorch itself).

// HardSigmoid applies max(0, min(1, x/2 + 1/2)) elementwise.
type HardSigmoid struct{}

// Name implements Layer.
func (HardSigmoid) Name() string { return "HardSigmoid()" }

// Forward implements Layer.
func (HardSigmoid) Forward(g *Graph, x *Tensor) (*Tensor, error) {
	out := g.newLike(x.Shape)
	one := g.DT.Const(g.M, 1)
	zero := g.DT.Zero(g.M)
	for i, bus := range x.data {
		v := g.DT.MulConst(g.M, bus, 0.5)
		v = g.DT.Add(g.M, v, g.DT.Const(g.M, 0.5))
		v = clamp(g, v, zero, one)
		out.data[i] = v
	}
	return out, nil
}

// HardTanh applies max(-1, min(1, x)) elementwise.
type HardTanh struct{}

// Name implements Layer.
func (HardTanh) Name() string { return "HardTanh()" }

// Forward implements Layer.
func (HardTanh) Forward(g *Graph, x *Tensor) (*Tensor, error) {
	out := g.newLike(x.Shape)
	one := g.DT.Const(g.M, 1)
	negOne := g.DT.Const(g.M, -1)
	for i, bus := range x.data {
		out.data[i] = clamp(g, bus, negOne, one)
	}
	return out, nil
}

// clamp returns min(max(v, lo), hi).
func clamp(g *Graph, v, lo, hi hdl.Bus) hdl.Bus {
	v = g.DT.Max(g.M, v, lo)
	return g.DT.Min(g.M, v, hi)
}

// LeakyReLU applies x for x >= 0 and slope*x otherwise.
type LeakyReLU struct {
	Slope float64 // defaults to 0.01
}

// Name implements Layer.
func (l LeakyReLU) Name() string { return fmt.Sprintf("LeakyReLU(%g)", l.slope()) }

func (l LeakyReLU) slope() float64 {
	if l.Slope == 0 {
		return 0.01
	}
	return l.Slope
}

// Forward implements Layer.
func (l LeakyReLU) Forward(g *Graph, x *Tensor) (*Tensor, error) {
	out := g.newLike(x.Shape)
	for i, bus := range x.data {
		neg := g.DT.MulConst(g.M, bus, l.slope())
		// Select by the sign of x. The sign lives in the top bit for the
		// integer/fixed types; for floats FLt against zero is the test.
		sel := g.DT.Lt(g.M, bus, g.DT.Zero(g.M))
		out.data[i] = g.M.Mux(sel[0], neg, bus)
	}
	return out, nil
}

// ReLU6 applies min(max(x, 0), 6) — the quantization-friendly ReLU.
type ReLU6 struct{}

// Name implements Layer.
func (ReLU6) Name() string { return "ReLU6()" }

// Forward implements Layer.
func (ReLU6) Forward(g *Graph, x *Tensor) (*Tensor, error) {
	out := g.newLike(x.Shape)
	six := g.DT.Const(g.M, 6)
	for i, bus := range x.data {
		v := g.DT.Relu(g.M, bus)
		out.data[i] = g.DT.Min(g.M, v, six)
	}
	return out, nil
}

// Concat joins tensors along dimension 0 (pure wiring).
func (g *Graph) Concat(ts ...*Tensor) *Tensor {
	if len(ts) == 0 {
		panic("chiseltorch: concat of nothing")
	}
	base := ts[0]
	rows := 0
	for _, t := range ts {
		if len(t.Shape) != len(base.Shape) {
			panic("chiseltorch: concat rank mismatch")
		}
		for d := 1; d < len(base.Shape); d++ {
			if t.Shape[d] != base.Shape[d] {
				panic(fmt.Sprintf("chiseltorch: concat shape mismatch %v vs %v", t.Shape, base.Shape))
			}
		}
		rows += t.Shape[0]
	}
	shape := append([]int(nil), base.Shape...)
	shape[0] = rows
	out := &Tensor{Shape: shape, dt: base.dt, data: make([]hdl.Bus, 0, numElements(shape))}
	for _, t := range ts {
		out.data = append(out.data, t.data...)
	}
	return out
}

// Slice returns rows [lo, hi) along dimension 0 (pure wiring).
func (g *Graph) Slice(t *Tensor, lo, hi int) *Tensor {
	if lo < 0 || hi > t.Shape[0] || lo >= hi {
		panic(fmt.Sprintf("chiseltorch: slice [%d,%d) of dim-0 size %d", lo, hi, t.Shape[0]))
	}
	stride := 1
	for _, d := range t.Shape[1:] {
		stride *= d
	}
	shape := append([]int(nil), t.Shape...)
	shape[0] = hi - lo
	return &Tensor{Shape: shape, dt: t.dt, data: t.data[lo*stride : hi*stride]}
}
