package chiseltorch

import (
	"math"
	"testing"

	"pytfhe/internal/hdl"
)

func runLayer(t *testing.T, l Layer, dt DType, in []float64) []float64 {
	t.Helper()
	model := Model{Name: "act", DType: dt, Net: l}
	c, err := model.Compile(len(in))
	if err != nil {
		t.Fatal(err)
	}
	out, err := c.Infer(in)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func TestHardSigmoid(t *testing.T) {
	in := []float64{-3, -1, 0, 1, 3, 0.5}
	out := runLayer(t, HardSigmoid{}, fixed88, in)
	for i, x := range in {
		want := math.Max(0, math.Min(1, x/2+0.5))
		if !approxEq(out[i], want, 0.02) {
			t.Errorf("hardsigmoid(%g) = %g want %g", x, out[i], want)
		}
	}
}

func TestHardTanh(t *testing.T) {
	in := []float64{-5, -1, -0.5, 0, 0.5, 1, 5}
	out := runLayer(t, HardTanh{}, fixed88, in)
	for i, x := range in {
		want := math.Max(-1, math.Min(1, x))
		if !approxEq(out[i], want, 0.01) {
			t.Errorf("hardtanh(%g) = %g want %g", x, out[i], want)
		}
	}
}

func TestLeakyReLU(t *testing.T) {
	in := []float64{-4, -1, 0, 1, 4}
	out := runLayer(t, LeakyReLU{Slope: 0.25}, fixed88, in)
	for i, x := range in {
		want := x
		if x < 0 {
			want = 0.25 * x
		}
		if !approxEq(out[i], want, 0.02) {
			t.Errorf("leakyrelu(%g) = %g want %g", x, out[i], want)
		}
	}
}

func TestReLU6(t *testing.T) {
	in := []float64{-2, 0, 3, 6, 50}
	out := runLayer(t, ReLU6{}, fixed88, in)
	for i, x := range in {
		want := math.Max(0, math.Min(6, x))
		if !approxEq(out[i], want, 0.01) {
			t.Errorf("relu6(%g) = %g want %g", x, out[i], want)
		}
	}
}

func TestHardActivationsOnFloatType(t *testing.T) {
	dt := NewFloat(8, 8)
	in := []float64{-2, 0.25, 2}
	out := runLayer(t, HardTanh{}, dt, in)
	want := []float64{-1, 0.25, 1}
	for i := range want {
		if !approxEq(out[i], want[i], 0.02) {
			t.Errorf("float hardtanh(%g) = %g want %g", in[i], out[i], want[i])
		}
	}
}

func TestConcatAndSlice(t *testing.T) {
	g := NewGraph("cat", fixed88)
	a := g.InputTensor("a", 2, 3)
	b := g.InputTensor("b", 1, 3)
	c := g.Concat(a, b)
	if c.Shape[0] != 3 || c.Shape[1] != 3 {
		t.Fatalf("concat shape %v", c.Shape)
	}
	s := g.Slice(c, 1, 3)
	if s.Shape[0] != 2 {
		t.Fatalf("slice shape %v", s.Shape)
	}
	g.Output("y", s)
	nl, err := g.M.Build()
	if err != nil {
		t.Fatal(err)
	}
	if len(nl.Gates) != 0 {
		t.Fatalf("concat/slice must be pure wiring, got %d gates", len(nl.Gates))
	}
	in := append([]float64{1, 2, 3, 4, 5, 6}, 7, 8, 9)
	bits := EncodeTensor(fixed88, in)
	out, _ := nl.Evaluate(bits)
	res := DecodeTensor(fixed88, out)
	want := []float64{4, 5, 6, 7, 8, 9}
	for i := range want {
		if res[i] != want[i] {
			t.Fatalf("concat/slice data %v, want %v", res, want)
		}
	}
}

func TestConcatValidation(t *testing.T) {
	g := NewGraph("bad", fixed88)
	a := g.InputTensor("a", 2, 3)
	b := g.InputTensor("b", 2, 4)
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched concat should panic")
		}
	}()
	g.Concat(a, b)
}

func TestUIntDType(t *testing.T) {
	u8 := NewUInt(8)
	if u8.Name() != "UInt(8)" || u8.Width() != 8 {
		t.Fatal("metadata")
	}
	// Encode clamps to the unsigned range.
	if u8.Encode(-5) != 0 || u8.Encode(300) != 255 || u8.Encode(42) != 42 {
		t.Fatal("encode clamping")
	}
	g := NewGraph("uint", u8)
	x := g.InputTensor("x", 2)
	y := g.InputTensor("y", 2)
	g.Output("sum", g.Add(x, y))
	g.Output("mul", g.Mul(x, y))
	g.Output("div", g.Div(x, y))
	g.Output("max", g.cmpFreeMax(x, y))
	g.Output("lt", g.Lt(x, y))
	nl, err := g.M.Build()
	if err != nil {
		t.Fatal(err)
	}
	in := append(EncodeTensor(u8, []float64{200, 7}), EncodeTensor(u8, []float64{100, 3})...)
	out, err := nl.Evaluate(in)
	if err != nil {
		t.Fatal(err)
	}
	res := DecodeTensor(u8, out[:4*8])
	want := []float64{(200 + 100) % 256, (7 + 3) % 256, (200 * 100) % 256, (7 * 3) % 256}
	for i := range want {
		if res[i] != want[i] {
			t.Fatalf("uint op %d = %g want %g (all %v)", i, res[i], want[i], res)
		}
	}
	div := DecodeTensor(u8, out[4*8:6*8])
	if div[0] != 2 || div[1] != 2 {
		t.Fatalf("uint div = %v", div)
	}
	maxv := DecodeTensor(u8, out[6*8:8*8])
	if maxv[0] != 200 || maxv[1] != 7 {
		t.Fatalf("uint max = %v", maxv)
	}
	if out[8*8] != false || out[8*8+1] != false { // 200<100, 7<3
		t.Fatalf("uint lt wrong")
	}
}

// cmpFreeMax is a tiny helper exercising elementwise Max through the
// generic zip path.
func (g *Graph) cmpFreeMax(a, b *Tensor) *Tensor {
	return g.zip(a, b, func(x, y hdl.Bus) hdl.Bus { return g.DT.Max(g.M, x, y) })
}

func TestUIntReluIsIdentityAndFree(t *testing.T) {
	u4 := NewUInt(4)
	model := Model{Name: "urelu", DType: u4, Net: ReLU{}}
	c, err := model.Compile(3)
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Netlist.Gates) != 0 {
		t.Fatalf("unsigned relu should be free, got %d gates", len(c.Netlist.Gates))
	}
	out, err := c.Infer([]float64{0, 7, 15})
	if err != nil {
		t.Fatal(err)
	}
	if out[0] != 0 || out[1] != 7 || out[2] != 15 {
		t.Fatalf("unsigned relu = %v", out)
	}
}
