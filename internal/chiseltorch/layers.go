package chiseltorch

import (
	"fmt"
	"math"

	"pytfhe/internal/hdl"
)

// Layer is one neural-network building block. Forward constructs the
// layer's hardware on the graph, consuming and producing tensors. Layers
// carry their (plaintext) parameters; compiling bakes them into the
// circuit as constants.
type Layer interface {
	Name() string
	Forward(g *Graph, x *Tensor) (*Tensor, error)
}

// --- Linear ---

// Linear is a fully-connected layer: y = x W^T + b, with x of shape
// [In] (or [*, In]) and W of shape [Out][In].
type Linear struct {
	In, Out int
	Weight  []float64 // len Out*In, row-major [out][in]
	Bias    []float64 // len Out (nil for no bias)
}

// Name implements Layer.
func (l *Linear) Name() string { return fmt.Sprintf("Linear(%d, %d)", l.In, l.Out) }

// Forward implements Layer.
func (l *Linear) Forward(g *Graph, x *Tensor) (*Tensor, error) {
	if len(l.Weight) != l.In*l.Out {
		return nil, fmt.Errorf("chiseltorch: %s has %d weights", l.Name(), len(l.Weight))
	}
	if x.NumElements() != l.In {
		return nil, fmt.Errorf("chiseltorch: %s applied to input of %d elements", l.Name(), x.NumElements())
	}
	flat := g.Reshape(x, 1, l.In)
	// W^T as a constant tensor of shape [In][Out].
	wt := make([]float64, l.In*l.Out)
	for o := 0; o < l.Out; o++ {
		for i := 0; i < l.In; i++ {
			wt[i*l.Out+o] = l.Weight[o*l.In+i]
		}
	}
	wT := g.ConstTensor(wt, l.In, l.Out)
	y := g.MatMul(flat, wT)
	y = g.Reshape(y, l.Out)
	if l.Bias != nil {
		if len(l.Bias) != l.Out {
			return nil, fmt.Errorf("chiseltorch: %s has %d biases", l.Name(), len(l.Bias))
		}
		y = g.Add(y, g.ConstTensor(l.Bias, l.Out))
	}
	return y, nil
}

// --- ReLU ---

// ReLU applies max(x, 0) elementwise.
type ReLU struct{}

// Name implements Layer.
func (ReLU) Name() string { return "ReLU()" }

// Forward implements Layer.
func (ReLU) Forward(g *Graph, x *Tensor) (*Tensor, error) { return g.Relu(x), nil }

// --- Flatten ---

// Flatten collapses the input to rank 1. It lowers to pure wiring: zero
// gates, the optimization the paper highlights against Transpiler.
type Flatten struct{}

// Name implements Layer.
func (Flatten) Name() string { return "Flatten()" }

// Forward implements Layer.
func (Flatten) Forward(g *Graph, x *Tensor) (*Tensor, error) { return g.Flatten(x), nil }

// --- Conv2d ---

// Conv2d is a 2-D convolution over input of shape [C, H, W] producing
// [OutC, H', W'], with square kernels, stride and zero padding —
// Conv2d(in, out, kernel, stride) in the ChiselTorch API.
type Conv2d struct {
	InC, OutC int
	Kernel    int
	Stride    int
	Padding   int
	Weight    []float64 // [OutC][InC][K][K]
	Bias      []float64 // [OutC] or nil
}

// Name implements Layer.
func (c *Conv2d) Name() string {
	return fmt.Sprintf("Conv2d(%d, %d, %d, %d)", c.InC, c.OutC, c.Kernel, c.Stride)
}

// Forward implements Layer.
func (c *Conv2d) Forward(g *Graph, x *Tensor) (*Tensor, error) {
	if len(x.Shape) != 3 || x.Shape[0] != c.InC {
		return nil, fmt.Errorf("chiseltorch: %s applied to shape %v", c.Name(), x.Shape)
	}
	if want := c.OutC * c.InC * c.Kernel * c.Kernel; len(c.Weight) != want {
		return nil, fmt.Errorf("chiseltorch: %s has %d weights, want %d", c.Name(), len(c.Weight), want)
	}
	stride := c.Stride
	if stride == 0 {
		stride = 1
	}
	if c.Padding > 0 {
		x = g.Pad(x, c.Padding)
	}
	h, w := x.Shape[1], x.Shape[2]
	oh := (h-c.Kernel)/stride + 1
	ow := (w-c.Kernel)/stride + 1
	if oh <= 0 || ow <= 0 {
		return nil, fmt.Errorf("chiseltorch: %s output would be empty for input %v", c.Name(), x.Shape)
	}
	out := g.newLike([]int{c.OutC, oh, ow})
	for oc := 0; oc < c.OutC; oc++ {
		for oy := 0; oy < oh; oy++ {
			for ox := 0; ox < ow; ox++ {
				// Weighted taps with zero weights skipped entirely.
				prods := make([]hdl.Bus, 0, c.InC*c.Kernel*c.Kernel)
				for ic := 0; ic < c.InC; ic++ {
					for ky := 0; ky < c.Kernel; ky++ {
						for kx := 0; kx < c.Kernel; kx++ {
							wv := c.Weight[((oc*c.InC+ic)*c.Kernel+ky)*c.Kernel+kx]
							if wv == 0 {
								continue
							}
							in := x.At(ic, oy*stride+ky, ox*stride+kx)
							prods = append(prods, g.DT.MulConst(g.M, in, wv))
						}
					}
				}
				s := g.sumBuses(prods)
				if c.Bias != nil {
					s = g.DT.Add(g.M, s, g.DT.Const(g.M, c.Bias[oc]))
				}
				out.data[(oc*oh+oy)*ow+ox] = s
			}
		}
	}
	return out, nil
}

// --- Conv1d ---

// Conv1d is a 1-D convolution over input [C, L] producing [OutC, L'].
type Conv1d struct {
	InC, OutC int
	Kernel    int
	Stride    int
	Weight    []float64 // [OutC][InC][K]
	Bias      []float64
}

// Name implements Layer.
func (c *Conv1d) Name() string {
	return fmt.Sprintf("Conv1d(%d, %d, %d, %d)", c.InC, c.OutC, c.Kernel, c.Stride)
}

// Forward implements Layer.
func (c *Conv1d) Forward(g *Graph, x *Tensor) (*Tensor, error) {
	if len(x.Shape) != 2 || x.Shape[0] != c.InC {
		return nil, fmt.Errorf("chiseltorch: %s applied to shape %v", c.Name(), x.Shape)
	}
	stride := c.Stride
	if stride == 0 {
		stride = 1
	}
	l := x.Shape[1]
	ol := (l-c.Kernel)/stride + 1
	if ol <= 0 {
		return nil, fmt.Errorf("chiseltorch: %s output would be empty", c.Name())
	}
	out := g.newLike([]int{c.OutC, ol})
	for oc := 0; oc < c.OutC; oc++ {
		for op := 0; op < ol; op++ {
			terms := make([]hdl.Bus, 0, c.InC*c.Kernel)
			for ic := 0; ic < c.InC; ic++ {
				for k := 0; k < c.Kernel; k++ {
					wv := c.Weight[(oc*c.InC+ic)*c.Kernel+k]
					if wv == 0 {
						continue
					}
					in := x.At(ic, op*stride+k)
					terms = append(terms, g.DT.MulConst(g.M, in, wv))
				}
			}
			s := g.sumBuses(terms)
			if c.Bias != nil {
				s = g.DT.Add(g.M, s, g.DT.Const(g.M, c.Bias[oc]))
			}
			out.data[oc*ol+op] = s
		}
	}
	return out, nil
}

// --- pooling ---

// MaxPool2d takes the maximum over kernel×kernel windows with the given
// stride — MaxPool2d(kernel, stride).
type MaxPool2d struct {
	Kernel, Stride int
}

// Name implements Layer.
func (p MaxPool2d) Name() string { return fmt.Sprintf("MaxPool2d(%d,%d)", p.Kernel, p.Stride) }

// Forward implements Layer.
func (p MaxPool2d) Forward(g *Graph, x *Tensor) (*Tensor, error) {
	return pool2d(g, x, p.Kernel, p.Stride, "MaxPool2d", func(a, b hdl.Bus) hdl.Bus {
		return g.DT.Max(g.M, a, b)
	}, nil)
}

// AvgPool2d averages over kernel×kernel windows.
type AvgPool2d struct {
	Kernel, Stride int
}

// Name implements Layer.
func (p AvgPool2d) Name() string { return fmt.Sprintf("AvgPool2d(%d,%d)", p.Kernel, p.Stride) }

// Forward implements Layer.
func (p AvgPool2d) Forward(g *Graph, x *Tensor) (*Tensor, error) {
	inv := 1.0 / float64(p.Kernel*p.Kernel)
	return pool2d(g, x, p.Kernel, p.Stride, "AvgPool2d", func(a, b hdl.Bus) hdl.Bus {
		return g.DT.Add(g.M, a, b)
	}, func(a hdl.Bus) hdl.Bus {
		return g.DT.MulConst(g.M, a, inv)
	})
}

// MaxPool1d pools over length-kernel windows of a [C, L] input.
type MaxPool1d struct {
	Kernel, Stride int
}

// Name implements Layer.
func (p MaxPool1d) Name() string { return fmt.Sprintf("MaxPool1d(%d,%d)", p.Kernel, p.Stride) }

// Forward implements Layer.
func (p MaxPool1d) Forward(g *Graph, x *Tensor) (*Tensor, error) {
	return pool1d(g, x, p.Kernel, p.Stride, "MaxPool1d", func(a, b hdl.Bus) hdl.Bus {
		return g.DT.Max(g.M, a, b)
	}, nil)
}

// AvgPool1d averages over length-kernel windows.
type AvgPool1d struct {
	Kernel, Stride int
}

// Name implements Layer.
func (p AvgPool1d) Name() string { return fmt.Sprintf("AvgPool1d(%d,%d)", p.Kernel, p.Stride) }

// Forward implements Layer.
func (p AvgPool1d) Forward(g *Graph, x *Tensor) (*Tensor, error) {
	inv := 1.0 / float64(p.Kernel)
	return pool1d(g, x, p.Kernel, p.Stride, "AvgPool1d", func(a, b hdl.Bus) hdl.Bus {
		return g.DT.Add(g.M, a, b)
	}, func(a hdl.Bus) hdl.Bus {
		return g.DT.MulConst(g.M, a, inv)
	})
}

// pool2d folds combine over each window, then applies finish (if any).
func pool2d(g *Graph, x *Tensor, kernel, stride int, name string,
	combine func(a, b hdl.Bus) hdl.Bus, finish func(hdl.Bus) hdl.Bus) (*Tensor, error) {
	if len(x.Shape) != 3 {
		return nil, fmt.Errorf("chiseltorch: %s applied to shape %v", name, x.Shape)
	}
	if stride == 0 {
		stride = kernel
	}
	c, h, w := x.Shape[0], x.Shape[1], x.Shape[2]
	oh := (h-kernel)/stride + 1
	ow := (w-kernel)/stride + 1
	if oh <= 0 || ow <= 0 {
		return nil, fmt.Errorf("chiseltorch: %s output would be empty for input %v", name, x.Shape)
	}
	out := g.newLike([]int{c, oh, ow})
	for ic := 0; ic < c; ic++ {
		for oy := 0; oy < oh; oy++ {
			for ox := 0; ox < ow; ox++ {
				acc := x.At(ic, oy*stride, ox*stride)
				for ky := 0; ky < kernel; ky++ {
					for kx := 0; kx < kernel; kx++ {
						if ky == 0 && kx == 0 {
							continue
						}
						acc = combine(acc, x.At(ic, oy*stride+ky, ox*stride+kx))
					}
				}
				if finish != nil {
					acc = finish(acc)
				}
				out.data[(ic*oh+oy)*ow+ox] = acc
			}
		}
	}
	return out, nil
}

func pool1d(g *Graph, x *Tensor, kernel, stride int, name string,
	combine func(a, b hdl.Bus) hdl.Bus, finish func(hdl.Bus) hdl.Bus) (*Tensor, error) {
	if len(x.Shape) != 2 {
		return nil, fmt.Errorf("chiseltorch: %s applied to shape %v", name, x.Shape)
	}
	if stride == 0 {
		stride = kernel
	}
	c, l := x.Shape[0], x.Shape[1]
	ol := (l-kernel)/stride + 1
	if ol <= 0 {
		return nil, fmt.Errorf("chiseltorch: %s output would be empty", name)
	}
	out := g.newLike([]int{c, ol})
	for ic := 0; ic < c; ic++ {
		for op := 0; op < ol; op++ {
			acc := x.At(ic, op*stride)
			for k := 1; k < kernel; k++ {
				acc = combine(acc, x.At(ic, op*stride+k))
			}
			if finish != nil {
				acc = finish(acc)
			}
			out.data[ic*ol+op] = acc
		}
	}
	return out, nil
}

// --- batch normalization ---

// BatchNorm2d applies the inference-time affine transform
// y = gamma * (x - mean) / sqrt(var + eps) + beta per channel of a
// [C, H, W] input. At compile time this folds into a single constant
// multiply-add per element.
type BatchNorm2d struct {
	C     int
	Gamma []float64
	Beta  []float64
	Mean  []float64
	Var   []float64
	Eps   float64
}

// Name implements Layer.
func (b *BatchNorm2d) Name() string { return fmt.Sprintf("BatchNorm2d(%d)", b.C) }

// Forward implements Layer.
func (b *BatchNorm2d) Forward(g *Graph, x *Tensor) (*Tensor, error) {
	if len(x.Shape) != 3 || x.Shape[0] != b.C {
		return nil, fmt.Errorf("chiseltorch: %s applied to shape %v", b.Name(), x.Shape)
	}
	scale, shift, err := b.fold()
	if err != nil {
		return nil, err
	}
	out := g.newLike(x.Shape)
	hw := x.Shape[1] * x.Shape[2]
	for c := 0; c < b.C; c++ {
		sb := g.DT.Const(g.M, shift[c])
		for i := 0; i < hw; i++ {
			v := g.DT.MulConst(g.M, x.data[c*hw+i], scale[c])
			out.data[c*hw+i] = g.DT.Add(g.M, v, sb)
		}
	}
	return out, nil
}

func (b *BatchNorm2d) fold() (scale, shift []float64, err error) {
	n := b.C
	if len(b.Gamma) != n || len(b.Beta) != n || len(b.Mean) != n || len(b.Var) != n {
		return nil, nil, fmt.Errorf("chiseltorch: %s has inconsistent parameter lengths", b.Name())
	}
	eps := b.Eps
	if eps == 0 {
		eps = 1e-5
	}
	scale = make([]float64, n)
	shift = make([]float64, n)
	for c := 0; c < n; c++ {
		s := b.Gamma[c] / math.Sqrt(b.Var[c]+eps)
		scale[c] = s
		shift[c] = b.Beta[c] - s*b.Mean[c]
	}
	return scale, shift, nil
}

// BatchNorm1d is the rank-1 (or [C, L]) batch normalization.
type BatchNorm1d struct {
	C     int
	Gamma []float64
	Beta  []float64
	Mean  []float64
	Var   []float64
	Eps   float64
}

// Name implements Layer.
func (b *BatchNorm1d) Name() string { return fmt.Sprintf("BatchNorm1d(%d)", b.C) }

// Forward implements Layer.
func (b *BatchNorm1d) Forward(g *Graph, x *Tensor) (*Tensor, error) {
	bn2 := &BatchNorm2d{C: b.C, Gamma: b.Gamma, Beta: b.Beta, Mean: b.Mean, Var: b.Var, Eps: b.Eps}
	scale, shift, err := bn2.fold()
	if err != nil {
		return nil, fmt.Errorf("chiseltorch: %s: %w", b.Name(), err)
	}
	// Accept [C] or [C, L].
	var l int
	switch len(x.Shape) {
	case 1:
		if x.Shape[0] != b.C {
			return nil, fmt.Errorf("chiseltorch: %s applied to shape %v", b.Name(), x.Shape)
		}
		l = 1
	case 2:
		if x.Shape[0] != b.C {
			return nil, fmt.Errorf("chiseltorch: %s applied to shape %v", b.Name(), x.Shape)
		}
		l = x.Shape[1]
	default:
		return nil, fmt.Errorf("chiseltorch: %s applied to shape %v", b.Name(), x.Shape)
	}
	out := g.newLike(x.Shape)
	for c := 0; c < b.C; c++ {
		sb := g.DT.Const(g.M, shift[c])
		for i := 0; i < l; i++ {
			v := g.DT.MulConst(g.M, x.data[c*l+i], scale[c])
			out.data[c*l+i] = g.DT.Add(g.M, v, sb)
		}
	}
	return out, nil
}

// --- Sequential ---

// Sequential chains layers, mirroring nn.Sequential.
type Sequential []Layer

// Name implements Layer.
func (s Sequential) Name() string { return fmt.Sprintf("Sequential(%d layers)", len(s)) }

// Forward implements Layer.
func (s Sequential) Forward(g *Graph, x *Tensor) (*Tensor, error) {
	var err error
	for i, l := range s {
		x, err = l.Forward(g, x)
		if err != nil {
			return nil, fmt.Errorf("layer %d (%s): %w", i, l.Name(), err)
		}
	}
	return x, nil
}
