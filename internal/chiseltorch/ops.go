package chiseltorch

import (
	"fmt"
	"math/bits"

	"pytfhe/internal/circuit"
	"pytfhe/internal/hdl"
)

// This file implements the primitive tensor operations of Table I:
// matmul, dot, elementwise arithmetic and comparisons, view/reshape/
// transpose/pad, sum, prod, max, min, argmax, argmin.

// constInfo reports whether a tensor is entirely compile-time constant and,
// if so, its decoded values. Constant operands let matmul and elementwise
// multiply lower through the cheap shift-add constant multipliers.
type constInfo struct {
	isConst bool
	values  []float64
}

func (g *Graph) constOf(t *Tensor) constInfo {
	vals := make([]float64, len(t.data))
	for i, bus := range t.data {
		var raw uint64
		for j, wire := range bus {
			switch wire {
			case circuit.ConstTrue:
				raw |= 1 << uint(j)
			case circuit.ConstFalse:
			default:
				return constInfo{}
			}
		}
		vals[i] = t.dt.Decode(raw)
	}
	return constInfo{isConst: true, values: vals}
}

func (g *Graph) zip(a, b *Tensor, f func(x, y hdl.Bus) hdl.Bus) *Tensor {
	if !sameShape(a, b) {
		panic(fmt.Sprintf("chiseltorch: shape mismatch %v vs %v", a.Shape, b.Shape))
	}
	out := g.newLike(a.Shape)
	for i := range a.data {
		out.data[i] = f(a.data[i], b.data[i])
	}
	return out
}

// Add returns the elementwise sum a + b.
func (g *Graph) Add(a, b *Tensor) *Tensor {
	return g.zip(a, b, func(x, y hdl.Bus) hdl.Bus { return g.DT.Add(g.M, x, y) })
}

// Sub returns the elementwise difference a - b.
func (g *Graph) Sub(a, b *Tensor) *Tensor {
	return g.zip(a, b, func(x, y hdl.Bus) hdl.Bus { return g.DT.Sub(g.M, x, y) })
}

// Mul returns the elementwise (Hadamard) product. If either operand is
// constant, the cheaper constant multiplier is used.
func (g *Graph) Mul(a, b *Tensor) *Tensor {
	if ci := g.constOf(b); ci.isConst {
		out := g.newLike(a.Shape)
		for i := range a.data {
			out.data[i] = g.DT.MulConst(g.M, a.data[i], ci.values[i])
		}
		return out
	}
	if ci := g.constOf(a); ci.isConst {
		return g.Mul(b, a)
	}
	return g.zip(a, b, func(x, y hdl.Bus) hdl.Bus { return g.DT.Mul(g.M, x, y) })
}

// Div returns the elementwise quotient a / b.
func (g *Graph) Div(a, b *Tensor) *Tensor {
	if ci := g.constOf(b); ci.isConst {
		out := g.newLike(a.Shape)
		for i := range a.data {
			out.data[i] = g.DT.MulConst(g.M, a.data[i], 1/ci.values[i])
		}
		return out
	}
	return g.zip(a, b, func(x, y hdl.Bus) hdl.Bus { return g.DT.Div(g.M, x, y) })
}

// Neg returns -a elementwise.
func (g *Graph) Neg(a *Tensor) *Tensor {
	out := g.newLike(a.Shape)
	for i := range a.data {
		out.data[i] = g.DT.Neg(g.M, a.data[i])
	}
	return out
}

// Relu returns max(a, 0) elementwise.
func (g *Graph) Relu(a *Tensor) *Tensor {
	out := g.newLike(a.Shape)
	for i := range a.data {
		out.data[i] = g.DT.Relu(g.M, a.data[i])
	}
	return out
}

// AddScalar adds the plaintext constant c to every element.
func (g *Graph) AddScalar(a *Tensor, c float64) *Tensor {
	cb := g.DT.Const(g.M, c)
	out := g.newLike(a.Shape)
	for i := range a.data {
		out.data[i] = g.DT.Add(g.M, a.data[i], cb)
	}
	return out
}

// MulScalar multiplies every element by the plaintext constant c.
func (g *Graph) MulScalar(a *Tensor, c float64) *Tensor {
	out := g.newLike(a.Shape)
	for i := range a.data {
		out.data[i] = g.DT.MulConst(g.M, a.data[i], c)
	}
	return out
}

// cmpTensor builds a 1-bit mask tensor from a comparison primitive.
func (g *Graph) cmpTensor(a, b *Tensor, f func(x, y hdl.Bus) hdl.Bus) *Tensor {
	if !sameShape(a, b) {
		panic(fmt.Sprintf("chiseltorch: shape mismatch %v vs %v", a.Shape, b.Shape))
	}
	out := &Tensor{Shape: append([]int(nil), a.Shape...), dt: NewSInt(1), data: make([]hdl.Bus, len(a.data))}
	for i := range a.data {
		out.data[i] = f(a.data[i], b.data[i])
	}
	return out
}

// Lt returns the elementwise mask a < b.
func (g *Graph) Lt(a, b *Tensor) *Tensor {
	return g.cmpTensor(a, b, func(x, y hdl.Bus) hdl.Bus { return g.DT.Lt(g.M, x, y) })
}

// Gt returns the elementwise mask a > b.
func (g *Graph) Gt(a, b *Tensor) *Tensor { return g.Lt(b, a) }

// Le returns the elementwise mask a <= b.
func (g *Graph) Le(a, b *Tensor) *Tensor {
	return g.cmpTensor(a, b, func(x, y hdl.Bus) hdl.Bus {
		return hdl.Bus{g.M.B.Not(g.DT.Lt(g.M, y, x)[0])}
	})
}

// Ge returns the elementwise mask a >= b.
func (g *Graph) Ge(a, b *Tensor) *Tensor { return g.Le(b, a) }

// Eq returns the elementwise mask a == b.
func (g *Graph) Eq(a, b *Tensor) *Tensor {
	return g.cmpTensor(a, b, func(x, y hdl.Bus) hdl.Bus { return g.DT.Eq(g.M, x, y) })
}

// Ne returns the elementwise mask a != b.
func (g *Graph) Ne(a, b *Tensor) *Tensor {
	return g.cmpTensor(a, b, func(x, y hdl.Bus) hdl.Bus {
		return hdl.Bus{g.M.B.Not(g.DT.Eq(g.M, x, y)[0])}
	})
}

// --- shape operations (pure wiring: zero gates, as the paper notes for
// Flatten) ---

// Reshape reinterprets the tensor with a new shape of equal element count.
func (g *Graph) Reshape(a *Tensor, shape ...int) *Tensor {
	if numElements(shape) != len(a.data) {
		panic(fmt.Sprintf("chiseltorch: cannot reshape %v to %v", a.Shape, shape))
	}
	return &Tensor{Shape: append([]int(nil), shape...), dt: a.dt, data: a.data}
}

// View is an alias of Reshape, mirroring the PyTorch API.
func (g *Graph) View(a *Tensor, shape ...int) *Tensor { return g.Reshape(a, shape...) }

// Flatten collapses all dimensions into one.
func (g *Graph) Flatten(a *Tensor) *Tensor { return g.Reshape(a, len(a.data)) }

// Transpose swaps two dimensions.
func (g *Graph) Transpose(a *Tensor, d0, d1 int) *Tensor {
	r := len(a.Shape)
	if d0 < 0 || d1 < 0 || d0 >= r || d1 >= r {
		panic(fmt.Sprintf("chiseltorch: transpose dims (%d,%d) out of range for rank %d", d0, d1, r))
	}
	shape := append([]int(nil), a.Shape...)
	shape[d0], shape[d1] = shape[d1], shape[d0]
	out := &Tensor{Shape: shape, dt: a.dt, data: make([]hdl.Bus, len(a.data))}
	idx := make([]int, r)
	for flat := range out.data {
		rem := flat
		for i := r - 1; i >= 0; i-- {
			idx[i] = rem % shape[i]
			rem /= shape[i]
		}
		idx[d0], idx[d1] = idx[d1], idx[d0]
		out.data[flat] = a.data[a.offset(idx)]
		idx[d0], idx[d1] = idx[d1], idx[d0]
	}
	return out
}

// Pad zero-pads the last two dimensions by p on every side (the layout
// convolutions need).
func (g *Graph) Pad(a *Tensor, p int) *Tensor {
	if p == 0 {
		return a
	}
	r := len(a.Shape)
	if r < 2 {
		panic("chiseltorch: pad requires rank >= 2")
	}
	shape := append([]int(nil), a.Shape...)
	shape[r-2] += 2 * p
	shape[r-1] += 2 * p
	out := g.newLike(shape)
	zero := g.DT.Zero(g.M)
	for i := range out.data {
		out.data[i] = zero
	}
	idx := make([]int, r)
	for flat := range a.data {
		rem := flat
		for i := r - 1; i >= 0; i-- {
			idx[i] = rem % a.Shape[i]
			rem /= a.Shape[i]
		}
		idx[r-2] += p
		idx[r-1] += p
		out.data[out.offset(idx)] = a.data[flat]
	}
	return out
}

// --- reductions ---

// sumBuses adds element buses as a balanced tree.
func (g *Graph) sumBuses(buses []hdl.Bus) hdl.Bus {
	if len(buses) == 0 {
		return g.DT.Zero(g.M)
	}
	for len(buses) > 1 {
		next := make([]hdl.Bus, 0, (len(buses)+1)/2)
		for i := 0; i+1 < len(buses); i += 2 {
			next = append(next, g.DT.Add(g.M, buses[i], buses[i+1]))
		}
		if len(buses)%2 == 1 {
			next = append(next, buses[len(buses)-1])
		}
		buses = next
	}
	return buses[0]
}

// Sum reduces the whole tensor to a scalar (shape []).
func (g *Graph) Sum(a *Tensor) *Tensor {
	out := g.newLike(nil)
	out.data[0] = g.sumBuses(append([]hdl.Bus(nil), a.data...))
	return out
}

// Prod reduces the whole tensor to a scalar product.
func (g *Graph) Prod(a *Tensor) *Tensor {
	out := g.newLike(nil)
	acc := a.data[0]
	for _, b := range a.data[1:] {
		acc = g.DT.Mul(g.M, acc, b)
	}
	out.data[0] = acc
	return out
}

// MaxReduce reduces the whole tensor to its maximum element.
func (g *Graph) MaxReduce(a *Tensor) *Tensor {
	out := g.newLike(nil)
	acc := a.data[0]
	for _, b := range a.data[1:] {
		acc = g.DT.Max(g.M, acc, b)
	}
	out.data[0] = acc
	return out
}

// MinReduce reduces the whole tensor to its minimum element.
func (g *Graph) MinReduce(a *Tensor) *Tensor {
	out := g.newLike(nil)
	acc := a.data[0]
	for _, b := range a.data[1:] {
		acc = g.DT.Min(g.M, acc, b)
	}
	out.data[0] = acc
	return out
}

// ArgMax returns the flat index of the maximum element as an unsigned
// integer tensor of minimal width (ties resolve to the lowest index).
func (g *Graph) ArgMax(a *Tensor) *Tensor { return g.argReduce(a, true) }

// ArgMin returns the flat index of the minimum element.
func (g *Graph) ArgMin(a *Tensor) *Tensor { return g.argReduce(a, false) }

func (g *Graph) argReduce(a *Tensor, wantMax bool) *Tensor {
	n := len(a.data)
	idxW := 1
	if n > 1 {
		idxW = bits.Len(uint(n - 1))
	}
	bestVal := a.data[0]
	bestIdx := g.M.ConstBus(0, idxW)
	for i := 1; i < n; i++ {
		var better hdl.Bus
		if wantMax {
			better = g.DT.Lt(g.M, bestVal, a.data[i])
		} else {
			better = g.DT.Lt(g.M, a.data[i], bestVal)
		}
		bestVal = g.M.Mux(better[0], a.data[i], bestVal)
		bestIdx = g.M.Mux(better[0], g.M.ConstBus(uint64(i), idxW), bestIdx)
	}
	return &Tensor{Shape: nil, dt: SInt{W: idxW}, data: []hdl.Bus{bestIdx}}
}

// Dot computes the inner product of two equal-length rank-1 tensors.
func (g *Graph) Dot(a, b *Tensor) *Tensor {
	if len(a.Shape) != 1 || len(b.Shape) != 1 || a.Shape[0] != b.Shape[0] {
		panic(fmt.Sprintf("chiseltorch: dot requires equal rank-1 shapes, got %v and %v", a.Shape, b.Shape))
	}
	return g.Sum(g.Mul(a, b))
}

// MatMul computes the matrix product of a (m×k) and b (k×n). Constant
// operands lower to shift-add constant multipliers.
func (g *Graph) MatMul(a, b *Tensor) *Tensor {
	if len(a.Shape) != 2 || len(b.Shape) != 2 || a.Shape[1] != b.Shape[0] {
		panic(fmt.Sprintf("chiseltorch: matmul shapes %v x %v", a.Shape, b.Shape))
	}
	mm, kk, nn := a.Shape[0], a.Shape[1], b.Shape[1]
	bConst := g.constOf(b)
	out := g.newLike([]int{mm, nn})
	for i := 0; i < mm; i++ {
		for j := 0; j < nn; j++ {
			terms := make([]hdl.Bus, 0, kk)
			for k := 0; k < kk; k++ {
				x := a.At(i, k)
				if bConst.isConst {
					c := bConst.values[k*nn+j]
					if c == 0 {
						continue
					}
					terms = append(terms, g.DT.MulConst(g.M, x, c))
				} else {
					terms = append(terms, g.DT.Mul(g.M, x, b.At(k, j)))
				}
			}
			out.data[i*nn+j] = g.sumBuses(terms)
		}
	}
	return out
}
