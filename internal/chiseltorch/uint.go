package chiseltorch

import (
	"fmt"
	"math"

	"pytfhe/internal/hdl"
)

// UInt is an unsigned integer of W bits — the remaining Table I data type.
// Subtraction wraps modulo 2^W; Relu is the identity (unsigned values are
// never negative); comparisons are unsigned.
type UInt struct{ W int }

// NewUInt returns the UInt(w) data type.
func NewUInt(w int) UInt { return UInt{W: w} }

// Width implements DType.
func (t UInt) Width() int { return t.W }

// Name implements DType.
func (t UInt) Name() string { return fmt.Sprintf("UInt(%d)", t.W) }

// Encode implements DType, clamping to [0, 2^W).
func (t UInt) Encode(v float64) uint64 {
	r := math.Round(v)
	if r < 0 {
		r = 0
	}
	max := math.Ldexp(1, t.W) - 1
	if r > max {
		r = max
	}
	return uint64(r)
}

// Decode implements DType.
func (t UInt) Decode(bits uint64) float64 {
	return float64(bits & (1<<uint(t.W) - 1))
}

// Add implements DType.
func (t UInt) Add(m *hdl.Module, a, b hdl.Bus) hdl.Bus { return m.Add(a, b) }

// Sub implements DType (wrapping).
func (t UInt) Sub(m *hdl.Module, a, b hdl.Bus) hdl.Bus { return m.Sub(a, b) }

// Mul implements DType (modular).
func (t UInt) Mul(m *hdl.Module, a, b hdl.Bus) hdl.Bus { return m.MulModular(a, b) }

// Div implements DType (unsigned quotient).
func (t UInt) Div(m *hdl.Module, a, b hdl.Bus) hdl.Bus {
	q, _ := m.DivU(a, b)
	return q
}

// MulConst implements DType: the constant is clamped to the unsigned range
// and lowered through CSD recoding.
func (t UInt) MulConst(m *hdl.Module, a hdl.Bus, c float64) hdl.Bus {
	ci := int64(t.Encode(c))
	return m.Truncate(m.MulConstS(m.ZeroExtend(a, t.W+1), ci, t.W+2), t.W)
}

// Neg implements DType: two's-complement wrap (matching unsigned hardware).
func (t UInt) Neg(m *hdl.Module, a hdl.Bus) hdl.Bus { return m.Neg(a) }

// Relu implements DType: identity for unsigned values.
func (t UInt) Relu(m *hdl.Module, a hdl.Bus) hdl.Bus { return a }

// Max implements DType.
func (t UInt) Max(m *hdl.Module, a, b hdl.Bus) hdl.Bus { return m.MaxU(a, b) }

// Min implements DType.
func (t UInt) Min(m *hdl.Module, a, b hdl.Bus) hdl.Bus { return m.MinU(a, b) }

// Lt implements DType.
func (t UInt) Lt(m *hdl.Module, a, b hdl.Bus) hdl.Bus { return hdl.Bus{m.LtU(a, b)} }

// Eq implements DType.
func (t UInt) Eq(m *hdl.Module, a, b hdl.Bus) hdl.Bus { return hdl.Bus{m.Eq(a, b)} }

// Zero implements DType.
func (t UInt) Zero(m *hdl.Module) hdl.Bus { return m.ConstBus(0, t.W) }

// Const implements DType.
func (t UInt) Const(m *hdl.Module, v float64) hdl.Bus { return m.ConstBus(t.Encode(v), t.W) }
