// Package chiseltorch is the neural-network frontend of PyTFHE: a
// PyTorch-compatible layer and tensor API whose forward pass *constructs
// hardware* — every tensor element is a bus of wires in a combinational
// circuit, and compiling a model yields a gate netlist ready for the
// assembler and the homomorphic backends.
//
// Data types are fully parameterizable, mirroring the paper: arbitrary
// width signed/unsigned integers (SInt/UInt), fixed point (Fixed) and
// floating point with arbitrary exponent/mantissa split (Float). Choosing
// a cheaper type reduces gate counts by orders of magnitude; see the
// quantization sweep in the benchmark harness.
package chiseltorch

import (
	"fmt"
	"math"

	"pytfhe/internal/hdl"
)

// DType is an element data type: a fixed bit layout plus the circuit
// implementations of the arithmetic the tensor operations need.
type DType interface {
	// Width is the total bit width of one element.
	Width() int
	// Name renders the type like the ChiselTorch API: SInt(8), Fixed(8,8),
	// Float(8,8).
	Name() string

	// Encode quantizes a real value to the type's bit pattern; Decode
	// inverts it. They are the software reference for weights and I/O.
	Encode(v float64) uint64
	Decode(bits uint64) float64

	// Circuit constructors. All operands and results have Width() bits.
	Add(m *hdl.Module, a, b hdl.Bus) hdl.Bus
	Sub(m *hdl.Module, a, b hdl.Bus) hdl.Bus
	Mul(m *hdl.Module, a, b hdl.Bus) hdl.Bus
	Div(m *hdl.Module, a, b hdl.Bus) hdl.Bus
	MulConst(m *hdl.Module, a hdl.Bus, c float64) hdl.Bus
	Neg(m *hdl.Module, a hdl.Bus) hdl.Bus
	Relu(m *hdl.Module, a hdl.Bus) hdl.Bus
	Max(m *hdl.Module, a, b hdl.Bus) hdl.Bus
	Min(m *hdl.Module, a, b hdl.Bus) hdl.Bus
	Lt(m *hdl.Module, a, b hdl.Bus) hdl.Bus // 1-bit result
	Eq(m *hdl.Module, a, b hdl.Bus) hdl.Bus // 1-bit result
	Zero(m *hdl.Module) hdl.Bus
	Const(m *hdl.Module, v float64) hdl.Bus
}

// SInt is a signed two's-complement integer of W bits. Real values encode
// by rounding.
type SInt struct{ W int }

// NewSInt returns the SInt(w) data type.
func NewSInt(w int) SInt { return SInt{W: w} }

// Width implements DType.
func (t SInt) Width() int { return t.W }

// Name implements DType.
func (t SInt) Name() string { return fmt.Sprintf("SInt(%d)", t.W) }

// Encode implements DType, saturating at the type bounds.
func (t SInt) Encode(v float64) uint64 {
	r := math.Round(v)
	lo := -math.Ldexp(1, t.W-1)
	hi := math.Ldexp(1, t.W-1) - 1
	if r < lo {
		r = lo
	}
	if r > hi {
		r = hi
	}
	return uint64(int64(r)) & (1<<uint(t.W) - 1)
}

// Decode implements DType.
func (t SInt) Decode(bits uint64) float64 {
	shift := 64 - uint(t.W)
	return float64(int64(bits<<shift) >> shift)
}

// Add implements DType.
func (t SInt) Add(m *hdl.Module, a, b hdl.Bus) hdl.Bus { return m.Add(a, b) }

// Sub implements DType.
func (t SInt) Sub(m *hdl.Module, a, b hdl.Bus) hdl.Bus { return m.Sub(a, b) }

// Mul implements DType (wrapping, like fixed-width integer hardware).
func (t SInt) Mul(m *hdl.Module, a, b hdl.Bus) hdl.Bus {
	return m.MulModular(m.SignExtend(a, t.W), m.SignExtend(b, t.W))
}

// Div implements DType (signed division truncating toward zero).
func (t SInt) Div(m *hdl.Module, a, b hdl.Bus) hdl.Bus {
	q, _ := m.DivS(a, b)
	return q
}

// MulConst implements DType using CSD shift-add recoding.
func (t SInt) MulConst(m *hdl.Module, a hdl.Bus, c float64) hdl.Bus {
	ci := int64(math.Round(c))
	return m.Truncate(m.MulConstS(a, ci, t.W+1), t.W)
}

// Neg implements DType.
func (t SInt) Neg(m *hdl.Module, a hdl.Bus) hdl.Bus { return m.Neg(a) }

// Relu implements DType.
func (t SInt) Relu(m *hdl.Module, a hdl.Bus) hdl.Bus { return m.ReluS(a) }

// Max implements DType.
func (t SInt) Max(m *hdl.Module, a, b hdl.Bus) hdl.Bus { return m.MaxS(a, b) }

// Min implements DType.
func (t SInt) Min(m *hdl.Module, a, b hdl.Bus) hdl.Bus { return m.MinS(a, b) }

// Lt implements DType.
func (t SInt) Lt(m *hdl.Module, a, b hdl.Bus) hdl.Bus { return hdl.Bus{m.LtS(a, b)} }

// Eq implements DType.
func (t SInt) Eq(m *hdl.Module, a, b hdl.Bus) hdl.Bus { return hdl.Bus{m.Eq(a, b)} }

// Zero implements DType.
func (t SInt) Zero(m *hdl.Module) hdl.Bus { return m.ConstBus(0, t.W) }

// Const implements DType.
func (t SInt) Const(m *hdl.Module, v float64) hdl.Bus { return m.ConstBus(t.Encode(v), t.W) }

// Fixed is a signed fixed-point type with Int integer bits (including
// sign) and Frac fractional bits; the raw integer r represents r / 2^Frac.
type Fixed struct {
	Int  int
	Frac int
}

// NewFixed returns the Fixed(int, frac) data type.
func NewFixed(intBits, fracBits int) Fixed { return Fixed{Int: intBits, Frac: fracBits} }

// Width implements DType.
func (t Fixed) Width() int { return t.Int + t.Frac }

// Name implements DType.
func (t Fixed) Name() string { return fmt.Sprintf("Fixed(%d,%d)", t.Int, t.Frac) }

// Encode implements DType, saturating at the type bounds.
func (t Fixed) Encode(v float64) uint64 {
	w := t.Width()
	r := math.Round(v * math.Ldexp(1, t.Frac))
	lo := -math.Ldexp(1, w-1)
	hi := math.Ldexp(1, w-1) - 1
	if r < lo {
		r = lo
	}
	if r > hi {
		r = hi
	}
	return uint64(int64(r)) & (1<<uint(w) - 1)
}

// Decode implements DType.
func (t Fixed) Decode(bits uint64) float64 {
	w := t.Width()
	shift := 64 - uint(w)
	raw := int64(bits<<shift) >> shift
	return float64(raw) / math.Ldexp(1, t.Frac)
}

// Add implements DType.
func (t Fixed) Add(m *hdl.Module, a, b hdl.Bus) hdl.Bus { return m.Add(a, b) }

// Sub implements DType.
func (t Fixed) Sub(m *hdl.Module, a, b hdl.Bus) hdl.Bus { return m.Sub(a, b) }

// Mul implements DType: full product, realigned by Frac, truncated to the
// element width.
func (t Fixed) Mul(m *hdl.Module, a, b hdl.Bus) hdl.Bus {
	w := t.Width()
	prod := m.MulS(a, b) // 2w bits
	return m.Slice(prod, t.Frac, t.Frac+w)
}

// Div implements DType: (a << Frac) / b, signed.
func (t Fixed) Div(m *hdl.Module, a, b hdl.Bus) hdl.Bus {
	w := t.Width()
	wide := w + t.Frac + 1
	num := m.SignExtend(m.ShlConstExpand(a, t.Frac), wide)
	den := m.SignExtend(b, wide)
	q, _ := m.DivS(num, den)
	return m.Truncate(q, w)
}

// MulConst implements DType via CSD recoding of the quantized constant.
func (t Fixed) MulConst(m *hdl.Module, a hdl.Bus, c float64) hdl.Bus {
	w := t.Width()
	ci := int64(math.Round(c * math.Ldexp(1, t.Frac)))
	prod := m.MulConstS(a, ci, w+t.Frac+1)
	return m.Slice(prod, t.Frac, t.Frac+w)
}

// Neg implements DType.
func (t Fixed) Neg(m *hdl.Module, a hdl.Bus) hdl.Bus { return m.Neg(a) }

// Relu implements DType.
func (t Fixed) Relu(m *hdl.Module, a hdl.Bus) hdl.Bus { return m.ReluS(a) }

// Max implements DType.
func (t Fixed) Max(m *hdl.Module, a, b hdl.Bus) hdl.Bus { return m.MaxS(a, b) }

// Min implements DType.
func (t Fixed) Min(m *hdl.Module, a, b hdl.Bus) hdl.Bus { return m.MinS(a, b) }

// Lt implements DType.
func (t Fixed) Lt(m *hdl.Module, a, b hdl.Bus) hdl.Bus { return hdl.Bus{m.LtS(a, b)} }

// Eq implements DType.
func (t Fixed) Eq(m *hdl.Module, a, b hdl.Bus) hdl.Bus { return hdl.Bus{m.Eq(a, b)} }

// Zero implements DType.
func (t Fixed) Zero(m *hdl.Module) hdl.Bus { return m.ConstBus(0, t.Width()) }

// Const implements DType.
func (t Fixed) Const(m *hdl.Module, v float64) hdl.Bus { return m.ConstBus(t.Encode(v), t.Width()) }

// Float is the parametric floating-point type Float(Exp, Mant); see
// hdl.FloatFormat for the exact semantics.
type Float struct{ F hdl.FloatFormat }

// NewFloat returns the Float(exp, mant) data type.
func NewFloat(exp, mant int) Float { return Float{F: hdl.FloatFormat{Exp: exp, Mant: mant}} }

// Width implements DType.
func (t Float) Width() int { return t.F.Width() }

// Name implements DType.
func (t Float) Name() string { return fmt.Sprintf("Float(%d,%d)", t.F.Exp, t.F.Mant) }

// Encode implements DType.
func (t Float) Encode(v float64) uint64 { return t.F.Encode(v) }

// Decode implements DType.
func (t Float) Decode(bits uint64) float64 { return t.F.Decode(bits) }

// Add implements DType.
func (t Float) Add(m *hdl.Module, a, b hdl.Bus) hdl.Bus { return m.FAdd(t.F, a, b) }

// Sub implements DType.
func (t Float) Sub(m *hdl.Module, a, b hdl.Bus) hdl.Bus { return m.FAdd(t.F, a, m.FNeg(t.F, b)) }

// Mul implements DType.
func (t Float) Mul(m *hdl.Module, a, b hdl.Bus) hdl.Bus { return m.FMul(t.F, a, b) }

// Div implements DType: a * (1/b) via the Newton-Raphson reciprocal unit.
// Constant divisors are cheaper through the graph API's Div, which lowers
// them to MulConst.
func (t Float) Div(m *hdl.Module, a, b hdl.Bus) hdl.Bus {
	return m.FDiv(t.F, a, b)
}

// MulConst implements DType.
func (t Float) MulConst(m *hdl.Module, a hdl.Bus, c float64) hdl.Bus {
	return m.FMul(t.F, a, m.FConst(t.F, c))
}

// Neg implements DType.
func (t Float) Neg(m *hdl.Module, a hdl.Bus) hdl.Bus { return m.FNeg(t.F, a) }

// Relu implements DType.
func (t Float) Relu(m *hdl.Module, a hdl.Bus) hdl.Bus { return m.FRelu(t.F, a) }

// Max implements DType.
func (t Float) Max(m *hdl.Module, a, b hdl.Bus) hdl.Bus { return m.FMax(t.F, a, b) }

// Min implements DType.
func (t Float) Min(m *hdl.Module, a, b hdl.Bus) hdl.Bus { return m.FMin(t.F, a, b) }

// Lt implements DType.
func (t Float) Lt(m *hdl.Module, a, b hdl.Bus) hdl.Bus { return hdl.Bus{m.FLt(t.F, a, b)} }

// Eq implements DType.
func (t Float) Eq(m *hdl.Module, a, b hdl.Bus) hdl.Bus { return hdl.Bus{m.FEq(t.F, a, b)} }

// Zero implements DType.
func (t Float) Zero(m *hdl.Module) hdl.Bus { return m.FZero(t.F) }

// Const implements DType.
func (t Float) Const(m *hdl.Module, v float64) hdl.Bus { return m.FConst(t.F, v) }
