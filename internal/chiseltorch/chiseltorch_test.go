package chiseltorch

import (
	"math"
	"math/rand"
	"testing"
)

// inferTensor compiles a graph-producing function and evaluates it on
// plaintext inputs.
func inferGraph(t *testing.T, dt DType, inShape []int, in []float64,
	f func(g *Graph, x *Tensor) *Tensor) []float64 {
	t.Helper()
	g := NewGraph("t", dt)
	x := g.InputTensor("x", inShape...)
	y := f(g, x)
	g.Output("y", y)
	nl, err := g.M.Build()
	if err != nil {
		t.Fatal(err)
	}
	bits := EncodeTensor(dt, in)
	out, err := nl.Evaluate(bits)
	if err != nil {
		t.Fatal(err)
	}
	return DecodeTensor(y.dt, out)
}

func approxEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

var fixed88 = NewFixed(8, 8)

func TestDTypeEncodeDecode(t *testing.T) {
	cases := []struct {
		dt   DType
		vals []float64
		tol  float64
	}{
		{NewSInt(8), []float64{0, 1, -1, 100, -128, 127}, 0},
		{NewFixed(8, 8), []float64{0, 1.5, -2.25, 100.0625, -127}, 1.0 / 256},
		{NewFloat(8, 8), []float64{0, 1.5, -2.25, 1000, 0.001}, 0.01},
	}
	for _, c := range cases {
		for _, v := range c.vals {
			got := c.dt.Decode(c.dt.Encode(v))
			tol := c.tol
			if c.tol > 0 && v != 0 {
				tol = math.Max(c.tol, math.Abs(v)*c.tol)
			}
			if !approxEq(got, v, tol) {
				t.Errorf("%s: %g -> %g", c.dt.Name(), v, got)
			}
		}
	}
}

func TestDTypeNames(t *testing.T) {
	if NewSInt(7).Name() != "SInt(7)" {
		t.Error(NewSInt(7).Name())
	}
	if NewFixed(8, 8).Name() != "Fixed(8,8)" {
		t.Error(NewFixed(8, 8).Name())
	}
	if NewFloat(5, 11).Name() != "Float(5,11)" {
		t.Error(NewFloat(5, 11).Name())
	}
}

func TestElementwiseOps(t *testing.T) {
	in := []float64{1, -2, 3.5, 0.25}
	out := inferGraph(t, fixed88, []int{4}, in, func(g *Graph, x *Tensor) *Tensor {
		c := g.ConstTensor([]float64{2, 3, -1, 0.5}, 4)
		return g.Add(g.Mul(x, c), c)
	})
	want := []float64{1*2 + 2, -2*3 + 3, 3.5*-1 - 1, 0.25*0.5 + 0.5}
	for i := range want {
		if !approxEq(out[i], want[i], 0.05) {
			t.Errorf("elem %d: got %g want %g", i, out[i], want[i])
		}
	}
}

func TestSubNegRelu(t *testing.T) {
	in := []float64{1, -2, 3, -4}
	out := inferGraph(t, fixed88, []int{4}, in, func(g *Graph, x *Tensor) *Tensor {
		return g.Relu(g.Neg(x)) // max(-x, 0)
	})
	want := []float64{0, 2, 0, 4}
	for i := range want {
		if !approxEq(out[i], want[i], 0.01) {
			t.Errorf("elem %d: got %g want %g", i, out[i], want[i])
		}
	}
}

func TestDotAndSum(t *testing.T) {
	in := []float64{1, 2, 3, 4}
	out := inferGraph(t, fixed88, []int{4}, in, func(g *Graph, x *Tensor) *Tensor {
		w := g.ConstTensor([]float64{0.5, -1, 2, 0.25}, 4)
		return g.Dot(x, w)
	})
	want := 1*0.5 - 2 + 6 + 1.0
	if !approxEq(out[0], want, 0.05) {
		t.Fatalf("dot = %g, want %g", out[0], want)
	}

	out2 := inferGraph(t, fixed88, []int{4}, in, func(g *Graph, x *Tensor) *Tensor {
		return g.Sum(x)
	})
	if !approxEq(out2[0], 10, 0.01) {
		t.Fatalf("sum = %g", out2[0])
	}
}

func TestMatMul(t *testing.T) {
	// Encrypted [2,3] times constant [3,2].
	in := []float64{1, 2, 3, 4, 5, 6}
	out := inferGraph(t, fixed88, []int{2, 3}, in, func(g *Graph, x *Tensor) *Tensor {
		w := g.ConstTensor([]float64{1, 0, 0, 1, 1, 1}, 3, 2)
		return g.MatMul(x, w)
	})
	want := []float64{1 + 3, 2 + 3, 4 + 6, 5 + 6}
	for i := range want {
		if !approxEq(out[i], want[i], 0.05) {
			t.Errorf("matmul[%d] = %g want %g", i, out[i], want[i])
		}
	}
}

func TestMatMulEncryptedBoth(t *testing.T) {
	in := []float64{1, 2, 3, 4, 2, 0, 1, 1} // x = [2,2], y = [2,2]
	g := NewGraph("mm", fixed88)
	x := g.InputTensor("x", 2, 2)
	y := g.InputTensor("y", 2, 2)
	z := g.MatMul(x, y)
	g.Output("z", z)
	nl, err := g.M.Build()
	if err != nil {
		t.Fatal(err)
	}
	out, err := nl.Evaluate(EncodeTensor(fixed88, in))
	if err != nil {
		t.Fatal(err)
	}
	res := DecodeTensor(fixed88, out)
	// [1 2; 3 4] * [2 0; 1 1] = [4 2; 10 4]
	want := []float64{4, 2, 10, 4}
	for i := range want {
		if !approxEq(res[i], want[i], 0.1) {
			t.Errorf("mm[%d] = %g want %g", i, res[i], want[i])
		}
	}
}

func TestReshapeTransposeArePureWiring(t *testing.T) {
	g := NewGraph("wire", fixed88)
	x := g.InputTensor("x", 2, 3)
	y := g.Transpose(x, 0, 1)
	y = g.Reshape(y, 6)
	y = g.View(y, 3, 2)
	y = g.Flatten(y)
	g.Output("y", y)
	nl, err := g.M.Build()
	if err != nil {
		t.Fatal(err)
	}
	if len(nl.Gates) != 0 {
		t.Fatalf("shape ops produced %d gates; they must be pure wiring", len(nl.Gates))
	}
	in := []float64{1, 2, 3, 4, 5, 6}
	out, _ := nl.Evaluate(EncodeTensor(fixed88, in))
	res := DecodeTensor(fixed88, out)
	want := []float64{1, 4, 2, 5, 3, 6} // transpose of 2x3
	for i := range want {
		if res[i] != want[i] {
			t.Fatalf("transpose order wrong: %v", res)
		}
	}
}

func TestPad(t *testing.T) {
	in := []float64{1, 2, 3, 4}
	out := inferGraph(t, fixed88, []int{1, 2, 2}, in, func(g *Graph, x *Tensor) *Tensor {
		return g.Pad(x, 1)
	})
	if len(out) != 16 {
		t.Fatalf("padded to %d elements, want 16", len(out))
	}
	if out[0] != 0 || out[5] != 1 || out[6] != 2 || out[9] != 3 || out[10] != 4 || out[15] != 0 {
		t.Fatalf("pad layout wrong: %v", out)
	}
}

func TestComparisons(t *testing.T) {
	in := []float64{1, -2}
	g := NewGraph("cmp", fixed88)
	x := g.InputTensor("x", 2)
	c := g.ConstTensor([]float64{0, 0}, 2)
	g.Output("lt", g.Lt(x, c))
	g.Output("gt", g.Gt(x, c))
	g.Output("eq", g.Eq(x, c))
	g.Output("ne", g.Ne(x, c))
	g.Output("le", g.Le(x, c))
	g.Output("ge", g.Ge(x, c))
	nl, err := g.M.Build()
	if err != nil {
		t.Fatal(err)
	}
	out, _ := nl.Evaluate(EncodeTensor(fixed88, in))
	// Layout: lt[0] lt[1] gt[0] gt[1] eq.. ne.. le.. ge..
	want := []bool{false, true, true, false, false, false, true, true, false, true, true, false}
	for i, w := range want {
		if out[i] != w {
			t.Fatalf("comparison bit %d = %v, want %v (all: %v)", i, out[i], w, out)
		}
	}
}

func TestArgMaxArgMin(t *testing.T) {
	in := []float64{1, 7, -3, 7, 2}
	out := inferGraph(t, fixed88, []int{5}, in, func(g *Graph, x *Tensor) *Tensor {
		return g.ArgMax(x)
	})
	if out[0] != 1 { // first maximal index
		t.Fatalf("argmax = %v", out[0])
	}
	out2 := inferGraph(t, fixed88, []int{5}, in, func(g *Graph, x *Tensor) *Tensor {
		return g.ArgMin(x)
	})
	if out2[0] != 2 {
		t.Fatalf("argmin = %v", out2[0])
	}
}

func TestMaxMinProdReduce(t *testing.T) {
	in := []float64{2, -1, 3, 0.5}
	outMax := inferGraph(t, fixed88, []int{4}, in, func(g *Graph, x *Tensor) *Tensor { return g.MaxReduce(x) })
	outMin := inferGraph(t, fixed88, []int{4}, in, func(g *Graph, x *Tensor) *Tensor { return g.MinReduce(x) })
	outProd := inferGraph(t, fixed88, []int{4}, in, func(g *Graph, x *Tensor) *Tensor { return g.Prod(x) })
	if outMax[0] != 3 || outMin[0] != -1 {
		t.Fatalf("max/min = %g/%g", outMax[0], outMin[0])
	}
	if !approxEq(outProd[0], -3, 0.1) {
		t.Fatalf("prod = %g", outProd[0])
	}
}

func TestDivByConstAndEncrypted(t *testing.T) {
	in := []float64{6, -9}
	out := inferGraph(t, fixed88, []int{2}, in, func(g *Graph, x *Tensor) *Tensor {
		return g.Div(x, g.ConstTensor([]float64{2, 3}, 2))
	})
	if !approxEq(out[0], 3, 0.05) || !approxEq(out[1], -3, 0.05) {
		t.Fatalf("const div = %v", out)
	}

	// Encrypted divisor via the SInt divider.
	si := NewSInt(8)
	g := NewGraph("div", si)
	x := g.InputTensor("x", 1)
	y := g.InputTensor("y", 1)
	g.Output("q", g.Div(x, y))
	nl, err := g.M.Build()
	if err != nil {
		t.Fatal(err)
	}
	bits := append(EncodeTensor(si, []float64{42}), EncodeTensor(si, []float64{5})...)
	res, _ := nl.Evaluate(bits)
	if q := DecodeTensor(si, res)[0]; q != 8 {
		t.Fatalf("42/5 = %g", q)
	}
}

func TestLinearLayer(t *testing.T) {
	lin := &Linear{
		In: 3, Out: 2,
		Weight: []float64{1, 0, -1 /* out0 */, 0.5, 2, 0 /* out1 */},
		Bias:   []float64{0.25, -1},
	}
	model := Model{Name: "lin", DType: fixed88, Net: lin}
	c, err := model.Compile(3)
	if err != nil {
		t.Fatal(err)
	}
	out, err := c.Infer([]float64{2, 1, 3})
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{2 - 3 + 0.25, 1 + 2 - 1}
	for i := range want {
		if !approxEq(out[i], want[i], 0.05) {
			t.Errorf("linear[%d] = %g want %g", i, out[i], want[i])
		}
	}
}

func TestConv2dLayer(t *testing.T) {
	// Conv2d(1,1,2,1) — the paper's running example.
	conv := &Conv2d{
		InC: 1, OutC: 1, Kernel: 2, Stride: 1,
		Weight: []float64{1, 0, 0, -1},
	}
	model := Model{Name: "conv", DType: fixed88, Net: conv}
	c, err := model.Compile(1, 3, 3)
	if err != nil {
		t.Fatal(err)
	}
	if c.OutputShape[0] != 1 || c.OutputShape[1] != 2 || c.OutputShape[2] != 2 {
		t.Fatalf("output shape %v", c.OutputShape)
	}
	in := []float64{
		1, 2, 3,
		4, 5, 6,
		7, 8, 9,
	}
	out, err := c.Infer(in)
	if err != nil {
		t.Fatal(err)
	}
	// Each output = x[i,j] - x[i+1,j+1].
	want := []float64{1 - 5, 2 - 6, 4 - 8, 5 - 9}
	for i := range want {
		if !approxEq(out[i], want[i], 0.01) {
			t.Errorf("conv[%d] = %g want %g", i, out[i], want[i])
		}
	}
}

func TestConv2dStrideAndBias(t *testing.T) {
	conv := &Conv2d{
		InC: 1, OutC: 1, Kernel: 2, Stride: 2,
		Weight: []float64{0.25, 0.25, 0.25, 0.25},
		Bias:   []float64{1},
	}
	model := Model{Name: "conv", DType: fixed88, Net: conv}
	c, err := model.Compile(1, 4, 4)
	if err != nil {
		t.Fatal(err)
	}
	in := make([]float64, 16)
	for i := range in {
		in[i] = float64(i)
	}
	out, err := c.Infer(in)
	if err != nil {
		t.Fatal(err)
	}
	// Window means + 1.
	want := []float64{(0+1+4+5)/4.0 + 1, (2+3+6+7)/4.0 + 1, (8+9+12+13)/4.0 + 1, (10+11+14+15)/4.0 + 1}
	for i := range want {
		if !approxEq(out[i], want[i], 0.05) {
			t.Errorf("conv[%d] = %g want %g", i, out[i], want[i])
		}
	}
}

func TestConv1dLayer(t *testing.T) {
	conv := &Conv1d{
		InC: 1, OutC: 2, Kernel: 2, Stride: 1,
		Weight: []float64{1, -1 /* ch0 */, 0.5, 0.5 /* ch1 */},
	}
	model := Model{Name: "conv1", DType: fixed88, Net: conv}
	c, err := model.Compile(1, 4)
	if err != nil {
		t.Fatal(err)
	}
	out, err := c.Infer([]float64{1, 3, 2, 5})
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{1 - 3, 3 - 2, 2 - 5, 2, 2.5, 3.5}
	for i := range want {
		if !approxEq(out[i], want[i], 0.02) {
			t.Errorf("conv1d[%d] = %g want %g", i, out[i], want[i])
		}
	}
}

func TestPooling(t *testing.T) {
	in := []float64{
		1, 2, 3, 4,
		5, 6, 7, 8,
		9, 10, 11, 12,
		13, 14, 15, 16,
	}
	mp := Model{Name: "mp", DType: fixed88, Net: MaxPool2d{Kernel: 2, Stride: 2}}
	c, err := mp.Compile(1, 4, 4)
	if err != nil {
		t.Fatal(err)
	}
	out, _ := c.Infer(in)
	want := []float64{6, 8, 14, 16}
	for i := range want {
		if out[i] != want[i] {
			t.Fatalf("maxpool = %v", out)
		}
	}

	ap := Model{Name: "ap", DType: fixed88, Net: AvgPool2d{Kernel: 2, Stride: 2}}
	c2, err := ap.Compile(1, 4, 4)
	if err != nil {
		t.Fatal(err)
	}
	out2, _ := c2.Infer(in)
	want2 := []float64{3.5, 5.5, 11.5, 13.5}
	for i := range want2 {
		if !approxEq(out2[i], want2[i], 0.05) {
			t.Fatalf("avgpool = %v", out2)
		}
	}

	mp1 := Model{Name: "mp1", DType: fixed88, Net: MaxPool1d{Kernel: 2, Stride: 2}}
	c3, err := mp1.Compile(1, 4)
	if err != nil {
		t.Fatal(err)
	}
	out3, _ := c3.Infer([]float64{1, 9, 4, 2})
	if out3[0] != 9 || out3[1] != 4 {
		t.Fatalf("maxpool1d = %v", out3)
	}

	ap1 := Model{Name: "ap1", DType: fixed88, Net: AvgPool1d{Kernel: 2, Stride: 2}}
	c4, err := ap1.Compile(1, 4)
	if err != nil {
		t.Fatal(err)
	}
	out4, _ := c4.Infer([]float64{1, 9, 4, 2})
	if !approxEq(out4[0], 5, 0.01) || !approxEq(out4[1], 3, 0.01) {
		t.Fatalf("avgpool1d = %v", out4)
	}
}

func TestBatchNorm(t *testing.T) {
	bn := &BatchNorm2d{
		C:     2,
		Gamma: []float64{1, 2},
		Beta:  []float64{0, 1},
		Mean:  []float64{1, -1},
		Var:   []float64{0.9999, 3.9999},
	}
	model := Model{Name: "bn", DType: fixed88, Net: bn}
	c, err := model.Compile(2, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	out, err := c.Infer([]float64{2, 0, 1, -3})
	if err != nil {
		t.Fatal(err)
	}
	// ch0: (x-1)/1*1+0 ; ch1: (x+1)/2*2+1
	want := []float64{1, -1, 3, -1}
	for i := range want {
		if !approxEq(out[i], want[i], 0.05) {
			t.Errorf("bn[%d] = %g want %g", i, out[i], want[i])
		}
	}
}

func TestSequentialMNISTStyleModel(t *testing.T) {
	// A miniature version of the Fig. 4 model over a 6x6 "image".
	rng := rand.New(rand.NewSource(5))
	convW := make([]float64, 4)
	for i := range convW {
		convW[i] = rng.Float64() - 0.5
	}
	linW := make([]float64, 2*16)
	for i := range linW {
		linW[i] = rng.Float64() - 0.5
	}
	model := Model{
		Name:  "mini_mnist",
		DType: fixed88,
		Net: Sequential{
			&Conv2d{InC: 1, OutC: 1, Kernel: 2, Stride: 1, Weight: convW},
			ReLU{},
			MaxPool2d{Kernel: 2, Stride: 1},
			Flatten{},
			&Linear{In: 16, Out: 2, Weight: linW},
		},
	}
	c, err := model.Compile(1, 6, 6)
	if err != nil {
		t.Fatal(err)
	}
	in := make([]float64, 36)
	for i := range in {
		in[i] = rng.Float64()*2 - 1
	}
	out, err := c.Infer(in)
	if err != nil {
		t.Fatal(err)
	}

	// Reference computation in float64 over the quantized weights.
	q := func(v float64) float64 { return fixed88.Decode(fixed88.Encode(v)) }
	img := make([]float64, 36)
	for i := range in {
		img[i] = q(in[i])
	}
	conv := make([]float64, 25)
	for y := 0; y < 5; y++ {
		for x := 0; x < 5; x++ {
			s := q(convW[0])*img[y*6+x] + q(convW[1])*img[y*6+x+1] + q(convW[2])*img[(y+1)*6+x] + q(convW[3])*img[(y+1)*6+x+1]
			if s < 0 {
				s = 0
			}
			conv[y*5+x] = s
		}
	}
	pool := make([]float64, 16)
	for y := 0; y < 4; y++ {
		for x := 0; x < 4; x++ {
			m := conv[y*5+x]
			for _, v := range []float64{conv[y*5+x+1], conv[(y+1)*5+x], conv[(y+1)*5+x+1]} {
				if v > m {
					m = v
				}
			}
			pool[y*4+x] = m
		}
	}
	for o := 0; o < 2; o++ {
		var s float64
		for i := 0; i < 16; i++ {
			s += q(linW[o*16+i]) * pool[i]
		}
		if !approxEq(out[o], s, 0.3) { // accumulation of fixed-point truncation
			t.Errorf("model out[%d] = %g, reference %g", o, out[o], s)
		}
	}
}

func TestSelfAttentionCompiles(t *testing.T) {
	const seq, hidden = 2, 4
	rng := rand.New(rand.NewSource(9))
	w := func() []float64 {
		v := make([]float64, hidden*hidden)
		for i := range v {
			v[i] = rng.Float64() - 0.5
		}
		return v
	}
	model := Model{
		Name:  "attn",
		DType: fixed88,
		Net:   &SelfAttention{Seq: seq, Hidden: hidden, Wq: w(), Wk: w(), Wv: w()},
	}
	c, err := model.Compile(seq, hidden)
	if err != nil {
		t.Fatal(err)
	}
	if c.OutputShape[0] != seq || c.OutputShape[1] != hidden {
		t.Fatalf("attention output shape %v", c.OutputShape)
	}
	in := make([]float64, seq*hidden)
	for i := range in {
		in[i] = rng.Float64() - 0.5
	}
	out, err := c.Infer(in)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != seq*hidden {
		t.Fatalf("attention produced %d outputs", len(out))
	}
}

func TestModelErrors(t *testing.T) {
	if _, err := (&Model{Name: "empty"}).Compile(4); err == nil {
		t.Error("empty model should not compile")
	}
	bad := Model{Name: "bad", DType: fixed88, Net: &Linear{In: 4, Out: 2, Weight: []float64{1}}}
	if _, err := bad.Compile(4); err == nil {
		t.Error("wrong weight count should not compile")
	}
	mis := Model{Name: "mis", DType: fixed88, Net: &Conv2d{InC: 3, OutC: 1, Kernel: 2, Weight: make([]float64, 12)}}
	if _, err := mis.Compile(1, 4, 4); err == nil {
		t.Error("channel mismatch should not compile")
	}
}

func TestEncodeInputValidation(t *testing.T) {
	model := Model{Name: "v", DType: fixed88, Net: ReLU{}}
	c, err := model.Compile(2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.EncodeInput([]float64{1}); err == nil {
		t.Error("wrong input length should error")
	}
}

func TestZeroWeightsProduceNoGates(t *testing.T) {
	// An all-zero linear layer should compile to (nearly) nothing: zero
	// weights are skipped and the zero sums fold to constants.
	lin := &Linear{In: 8, Out: 4, Weight: make([]float64, 32)}
	model := Model{Name: "zero", DType: fixed88, Net: lin}
	c, err := model.Compile(8)
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Netlist.Gates) != 0 {
		t.Fatalf("all-zero linear layer produced %d gates", len(c.Netlist.Gates))
	}
}

func TestFloatEncryptedDivision(t *testing.T) {
	dt := NewFloat(8, 8)
	g := NewGraph("fdiv", dt)
	x := g.InputTensor("x", 2)
	y := g.InputTensor("y", 2)
	g.Output("q", g.Div(x, y))
	nl, err := g.M.Build()
	if err != nil {
		t.Fatal(err)
	}
	in := append(EncodeTensor(dt, []float64{6, -1.5}), EncodeTensor(dt, []float64{2, 0.5})...)
	out, err := nl.Evaluate(in)
	if err != nil {
		t.Fatal(err)
	}
	res := DecodeTensor(dt, out)
	if !approxEq(res[0], 3, 0.05) || !approxEq(res[1], -3, 0.05) {
		t.Fatalf("float division = %v", res)
	}
}
