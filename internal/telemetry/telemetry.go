// Package telemetry is a dependency-free metrics registry exporting the
// Prometheus text exposition format (version 0.0.4): counters, gauges,
// and fixed-bucket histograms, optionally labeled, written determin-
// istically (families in registration order, series sorted by label
// value) so tests can pin output. pytfhed feeds it from the existing
// exec.Stats / serve stats / cluster.Totals plumbing and serves it on
// the -metrics-addr HTTP listener; nothing here imports anything beyond
// the standard library.
package telemetry

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Registry holds metric families and renders them as Prometheus text.
type Registry struct {
	mu     sync.Mutex
	fams   []*family
	byName map[string]*family
	hooks  []func()
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]*family)}
}

// OnScrape registers a hook run (in registration order) at the start of
// every WritePrometheus. Hooks are how snapshot-style sources — cumulative
// atomics in the executor, cache stats structs — are mirrored into the
// registry right before serialization instead of on every update.
func (r *Registry) OnScrape(fn func()) {
	r.mu.Lock()
	r.hooks = append(r.hooks, fn)
	r.mu.Unlock()
}

// family is one metric name: its metadata plus the labeled series.
type family struct {
	name, help, typ string
	labels          []string
	buckets         []float64 // histograms only

	mu     sync.Mutex
	series map[string]any // joined label values → *Counter/*Gauge/*Histogram
}

func (r *Registry) register(name, help, typ string, labels []string, buckets []float64) *family {
	if name == "" || strings.ContainsAny(name, " \n\"{}") {
		panic(fmt.Sprintf("telemetry: invalid metric name %q", name))
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.byName[name]; dup {
		panic(fmt.Sprintf("telemetry: duplicate metric %q", name))
	}
	f := &family{name: name, help: help, typ: typ, labels: labels, buckets: buckets,
		series: make(map[string]any)}
	r.fams = append(r.fams, f)
	r.byName[name] = f
	return f
}

// seriesKey joins label values; callers must pass exactly len(labels).
func (f *family) seriesKey(values []string) string {
	if len(values) != len(f.labels) {
		panic(fmt.Sprintf("telemetry: %s takes %d labels, got %d", f.name, len(f.labels), len(values)))
	}
	return strings.Join(values, "\xff")
}

// Counter is a monotone cumulative count. Set exists for scrape-time
// mirroring of a total maintained elsewhere (the value must still be
// monotone over time for Prometheus semantics to hold).
type Counter struct{ v atomic.Int64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (n must be >= 0).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Set rebinds the cumulative total (scrape-hook use).
func (c *Counter) Set(n int64) { c.v.Store(n) }

// Value reads the current total.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a value that goes up and down.
type Gauge struct{ bits atomic.Uint64 }

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Value reads the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram is a fixed-bucket cumulative histogram. Buckets are upper
// bounds in ascending order; an implicit +Inf bucket is appended.
type Histogram struct {
	buckets []float64
	counts  []atomic.Int64 // len(buckets)+1, cumulative at render time
	sumBits atomic.Uint64  // float64 sum, CAS-updated
	count   atomic.Int64
}

func newHistogram(buckets []float64) *Histogram {
	return &Histogram{buckets: buckets, counts: make([]atomic.Int64, len(buckets)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.buckets, v) // first bucket with bound >= v
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count reports the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Quantile estimates the q-quantile (0 < q < 1) from the bucket counts,
// attributing each bucket's mass to its upper bound — the standard
// histogram_quantile over-approximation. It returns the highest finite
// bound when the quantile lands in the +Inf bucket, and 0 with no
// observations.
func (h *Histogram) Quantile(q float64) float64 {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	rank := int64(math.Ceil(q * float64(total)))
	var cum int64
	for i := range h.buckets {
		cum += h.counts[i].Load()
		if cum >= rank {
			return h.buckets[i]
		}
	}
	if len(h.buckets) == 0 {
		return 0
	}
	return h.buckets[len(h.buckets)-1]
}

// Counter registers an unlabeled counter.
func (r *Registry) Counter(name, help string) *Counter {
	f := r.register(name, help, "counter", nil, nil)
	c := &Counter{}
	f.series[""] = c
	return c
}

// Gauge registers an unlabeled gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	f := r.register(name, help, "gauge", nil, nil)
	g := &Gauge{}
	f.series[""] = g
	return g
}

// Histogram registers an unlabeled histogram over the given ascending
// upper bounds.
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	f := r.register(name, help, "histogram", nil, checkBuckets(name, buckets))
	h := newHistogram(f.buckets)
	f.series[""] = h
	return h
}

// CounterVec registers a labeled counter family.
func (r *Registry) CounterVec(name, help string, labels ...string) *CounterVec {
	return &CounterVec{f: r.register(name, help, "counter", labels, nil)}
}

// GaugeVec registers a labeled gauge family.
func (r *Registry) GaugeVec(name, help string, labels ...string) *GaugeVec {
	return &GaugeVec{f: r.register(name, help, "gauge", labels, nil)}
}

// HistogramVec registers a labeled histogram family.
func (r *Registry) HistogramVec(name, help string, buckets []float64, labels ...string) *HistogramVec {
	return &HistogramVec{f: r.register(name, help, "histogram", labels, checkBuckets(name, buckets))}
}

func checkBuckets(name string, buckets []float64) []float64 {
	if len(buckets) == 0 {
		panic(fmt.Sprintf("telemetry: histogram %s needs at least one bucket", name))
	}
	if !sort.Float64sAreSorted(buckets) {
		panic(fmt.Sprintf("telemetry: histogram %s buckets not ascending", name))
	}
	out := make([]float64, len(buckets))
	copy(out, buckets)
	return out
}

// CounterVec is a counter family indexed by label values.
type CounterVec struct{ f *family }

// With returns (creating if needed) the child for the given label values.
func (v *CounterVec) With(values ...string) *Counter {
	key := v.f.seriesKey(values)
	v.f.mu.Lock()
	defer v.f.mu.Unlock()
	if c, ok := v.f.series[key]; ok {
		return c.(*Counter)
	}
	c := &Counter{}
	v.f.series[key] = c
	return c
}

// GaugeVec is a gauge family indexed by label values.
type GaugeVec struct{ f *family }

// With returns (creating if needed) the child for the given label values.
func (v *GaugeVec) With(values ...string) *Gauge {
	key := v.f.seriesKey(values)
	v.f.mu.Lock()
	defer v.f.mu.Unlock()
	if g, ok := v.f.series[key]; ok {
		return g.(*Gauge)
	}
	g := &Gauge{}
	v.f.series[key] = g
	return g
}

// HistogramVec is a histogram family indexed by label values.
type HistogramVec struct{ f *family }

// With returns (creating if needed) the child for the given label values.
func (v *HistogramVec) With(values ...string) *Histogram {
	key := v.f.seriesKey(values)
	v.f.mu.Lock()
	defer v.f.mu.Unlock()
	if h, ok := v.f.series[key]; ok {
		return h.(*Histogram)
	}
	h := newHistogram(v.f.buckets)
	v.f.series[key] = h
	return h
}

var labelEscaper = strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)

// labelString renders {k="v",...} for the series key, with an extra
// le bound appended for histogram buckets (leExtra == "" omits it).
func (f *family) labelString(key, leExtra string) string {
	var parts []string
	if len(f.labels) > 0 {
		values := strings.Split(key, "\xff")
		for i, l := range f.labels {
			parts = append(parts, l+`="`+labelEscaper.Replace(values[i])+`"`)
		}
	}
	if leExtra != "" {
		parts = append(parts, `le="`+leExtra+`"`)
	}
	if len(parts) == 0 {
		return ""
	}
	return "{" + strings.Join(parts, ",") + "}"
}

func formatFloat(v float64) string {
	if math.IsInf(v, +1) {
		return "+Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WritePrometheus runs the scrape hooks, then renders every family in
// registration order with series sorted by label values.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	hooks := append([]func(){}, r.hooks...)
	fams := append([]*family{}, r.fams...)
	r.mu.Unlock()
	for _, fn := range hooks {
		fn()
	}
	for _, f := range fams {
		if err := f.write(w); err != nil {
			return err
		}
	}
	return nil
}

func (f *family) write(w io.Writer) error {
	f.mu.Lock()
	keys := make([]string, 0, len(f.series))
	for k := range f.series {
		keys = append(keys, k)
	}
	metrics := make(map[string]any, len(f.series))
	for k, m := range f.series {
		metrics[k] = m
	}
	f.mu.Unlock()
	if len(keys) == 0 {
		return nil
	}
	sort.Strings(keys)
	if f.help != "" {
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n", f.name, f.help); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.typ); err != nil {
		return err
	}
	for _, k := range keys {
		var err error
		switch m := metrics[k].(type) {
		case *Counter:
			_, err = fmt.Fprintf(w, "%s%s %d\n", f.name, f.labelString(k, ""), m.Value())
		case *Gauge:
			_, err = fmt.Fprintf(w, "%s%s %s\n", f.name, f.labelString(k, ""), formatFloat(m.Value()))
		case *Histogram:
			err = f.writeHistogram(w, k, m)
		}
		if err != nil {
			return err
		}
	}
	return nil
}

func (f *family) writeHistogram(w io.Writer, key string, h *Histogram) error {
	var cum int64
	for i, bound := range h.buckets {
		cum += h.counts[i].Load()
		if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n",
			f.name, f.labelString(key, formatFloat(bound)), cum); err != nil {
			return err
		}
	}
	cum += h.counts[len(h.buckets)].Load()
	if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", f.name, f.labelString(key, "+Inf"), cum); err != nil {
		return err
	}
	sum := math.Float64frombits(h.sumBits.Load())
	if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", f.name, f.labelString(key, ""), formatFloat(sum)); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count%s %d\n", f.name, f.labelString(key, ""), h.count.Load())
	return err
}

// ExpBuckets returns n ascending bucket bounds starting at start and
// growing by factor — the latency-SLO ladder helper (e.g. ExpBuckets(1,
// 2, 14) spans 1ms..8s).
func ExpBuckets(start, factor float64, n int) []float64 {
	if start <= 0 || factor <= 1 || n < 1 {
		panic("telemetry: ExpBuckets needs start > 0, factor > 1, n >= 1")
	}
	out := make([]float64, n)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}
