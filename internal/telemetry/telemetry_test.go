package telemetry

import (
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

// TestExposition pins the text format end to end: family metadata,
// label rendering and escaping, series sorting, histogram buckets.
func TestExposition(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("app_requests_total", "Requests served.")
	c.Add(41)
	c.Inc()
	g := r.Gauge("app_queue_depth", "Requests waiting.")
	g.Set(3)
	cv := r.CounterVec("app_picks_total", "Scheduler picks.", "tenant")
	cv.With("beta").Add(2)
	cv.With("alpha").Add(5)
	cv.With(`we"ird\nl` + "\n").Inc()
	h := r.Histogram("app_latency_ms", "Latency.", []float64{1, 10})
	h.Observe(0.5)
	h.Observe(5)
	h.Observe(5)
	h.Observe(100)

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	want := `# HELP app_requests_total Requests served.
# TYPE app_requests_total counter
app_requests_total 42
# HELP app_queue_depth Requests waiting.
# TYPE app_queue_depth gauge
app_queue_depth 3
# HELP app_picks_total Scheduler picks.
# TYPE app_picks_total counter
app_picks_total{tenant="alpha"} 5
app_picks_total{tenant="beta"} 2
app_picks_total{tenant="we\"ird\\nl\n"} 1
# HELP app_latency_ms Latency.
# TYPE app_latency_ms histogram
app_latency_ms_bucket{le="1"} 1
app_latency_ms_bucket{le="10"} 3
app_latency_ms_bucket{le="+Inf"} 4
app_latency_ms_sum 110.5
app_latency_ms_count 4
`
	if got := sb.String(); got != want {
		t.Fatalf("exposition mismatch:\ngot:\n%s\nwant:\n%s", got, want)
	}
}

// TestHistogramVecAndQuantile drives a labeled histogram and the bucket
// quantile estimator.
func TestHistogramVecAndQuantile(t *testing.T) {
	r := NewRegistry()
	hv := r.HistogramVec("lat_ms", "", ExpBuckets(1, 2, 6), "tenant")
	h := hv.With("t0")
	for i := 0; i < 95; i++ {
		h.Observe(3) // lands in the le=4 bucket
	}
	for i := 0; i < 5; i++ {
		h.Observe(30) // lands in le=32
	}
	if h.Count() != 100 {
		t.Fatalf("Count = %d", h.Count())
	}
	if q := h.Quantile(0.5); q != 4 {
		t.Fatalf("p50 = %v, want 4", q)
	}
	if q := h.Quantile(0.99); q != 32 {
		t.Fatalf("p99 = %v, want 32", q)
	}
	if hv.With("t0") != h {
		t.Fatal("With not idempotent")
	}
	var sb strings.Builder
	r.WritePrometheus(&sb)
	if !strings.Contains(sb.String(), `lat_ms_bucket{tenant="t0",le="4"} 95`) {
		t.Fatalf("vec histogram missing bucket series:\n%s", sb.String())
	}
	// Empty registry entries (no series) render nothing.
	r.CounterVec("unused_total", "", "x")
	sb.Reset()
	r.WritePrometheus(&sb)
	if strings.Contains(sb.String(), "unused_total") {
		t.Fatal("family with no series rendered")
	}
}

// TestScrapeHookAndHandler checks OnScrape mirrors run per scrape and
// the HTTP handler serves the format with the right content type.
func TestScrapeHookAndHandler(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("mirrored", "")
	n := 0
	r.OnScrape(func() { n++; g.Set(float64(n) * 10) })

	srv := httptest.NewServer(r.Handler())
	defer srv.Close()
	for want := 10.0; want <= 20; want += 10 {
		resp, err := srv.Client().Get(srv.URL)
		if err != nil {
			t.Fatal(err)
		}
		if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "text/plain") {
			t.Fatalf("content type %q", ct)
		}
		var sb strings.Builder
		buf := make([]byte, 4096)
		for {
			m, err := resp.Body.Read(buf)
			sb.Write(buf[:m])
			if err != nil {
				break
			}
		}
		resp.Body.Close()
		if g.Value() != want {
			t.Fatalf("scrape hook ran %d times, gauge %v", n, g.Value())
		}
		if !strings.Contains(sb.String(), "mirrored") {
			t.Fatalf("body missing gauge:\n%s", sb.String())
		}
	}
}

// TestConcurrentUpdates hammers every metric type while scraping, for
// the race detector.
func TestConcurrentUpdates(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "")
	g := r.Gauge("g", "")
	h := r.Histogram("h_ms", "", []float64{1, 5, 25})
	cv := r.CounterVec("cv_total", "", "t")
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				c.Inc()
				g.Set(float64(i))
				h.Observe(float64(i % 30))
				cv.With([]string{"a", "b", "c"}[i%3]).Inc()
			}
		}(w)
	}
	for s := 0; s < 4; s++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var sb strings.Builder
			for i := 0; i < 50; i++ {
				sb.Reset()
				r.WritePrometheus(&sb)
			}
		}()
	}
	wg.Wait()
	if c.Value() != 4000 {
		t.Fatalf("counter = %d, want 4000", c.Value())
	}
	if h.Count() != 4000 {
		t.Fatalf("histogram count = %d, want 4000", h.Count())
	}
}
