package telemetry

import (
	"bytes"
	"net/http"
)

// Handler returns an http.Handler serving the registry in Prometheus
// text format — mount it on /metrics. The response is rendered into a
// buffer first so a slow scraper never holds family locks.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		var buf bytes.Buffer
		if err := r.WritePrometheus(&buf); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		w.Write(buf.Bytes())
	})
}
