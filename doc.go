// Package pytfhe is a pure-Go reproduction of "PyTFHE: An End-to-End
// Compilation and Execution Framework for Fully Homomorphic Encryption
// Applications" (ISPASS 2023): a TFHE gate-bootstrapping cryptosystem, a
// hardware-construction frontend with a PyTorch-compatible neural-network
// API (ChiselTorch), a netlist synthesis pipeline, the PyTFHE program
// binary format, CPU / distributed / GPU-model execution backends, the
// VIP-Bench workload suite, and models of the Cingulata, E3 and Google
// Transpiler baselines.
//
// See README.md for a tour, DESIGN.md for the system inventory and
// paper-to-code mapping, and EXPERIMENTS.md for the reproduced evaluation.
// The implementation lives under internal/; cmd/ holds the command-line
// tools and examples/ the runnable end-to-end applications. The benchmarks
// in bench_test.go regenerate every table and figure of the paper.
package pytfhe
