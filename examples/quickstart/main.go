// Quickstart: encrypt two 8-bit numbers, homomorphically add and compare
// them on the "cloud" side, and decrypt the results — the end-to-end flow
// of Fig. 1, entirely in this repository's TFHE implementation.
//
// The example uses the fast test parameter set so it finishes in about a
// second; switch to params.Default128() for the production 128-bit set.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"time"

	"pytfhe/internal/backend"
	"pytfhe/internal/circuit"
	"pytfhe/internal/core"
	"pytfhe/internal/hdl"
	"pytfhe/internal/params"
)

func main() {
	const width = 8
	const a, b = 57, 184

	// --- client side: keys and encryption -------------------------------
	fmt.Println("generating keys (test parameters)...")
	kp, err := core.GenerateKeys(params.Test())
	if err != nil {
		log.Fatal(err)
	}

	// --- compile the circuit: sum and comparison of two 8-bit inputs ----
	m := hdl.New("quickstart")
	xa := m.InputBus("a", width)
	xb := m.InputBus("b", width)
	m.OutputBus("sum", m.AddExpand(xa, xb))
	m.Output("a_lt_b", m.LtU(xa, xb))
	prog, err := core.Compile(m.MustBuild())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("compiled %q: %d gates, depth %d, binary %d bytes\n",
		prog.Name, prog.Stats.Gates, prog.Stats.Depth, len(prog.Binary))

	bits := make([]bool, 2*width)
	for i := 0; i < width; i++ {
		bits[i] = a>>uint(i)&1 == 1
		bits[width+i] = b>>uint(i)&1 == 1
	}
	inputs := kp.EncryptBits(bits)
	fmt.Printf("encrypted %d bits (%d B of ciphertext)\n",
		len(inputs), len(inputs)*kp.Cloud.Params.CiphertextBytes())

	// --- server side: evaluate over ciphertexts only --------------------
	start := time.Now()
	outs, err := core.Run(prog, backend.NewPool(kp.Cloud, 4), inputs)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("evaluated homomorphically in %v\n", time.Since(start))

	// --- client side: decrypt -------------------------------------------
	outBits := kp.DecryptBits(outs)
	var sum uint64
	for i := 0; i < width+1; i++ {
		if outBits[i] {
			sum |= 1 << uint(i)
		}
	}
	lt := outBits[width+1]
	fmt.Printf("decrypted: %d + %d = %d, %d < %d = %v\n", a, b, sum, a, b, lt)
	if sum != a+b || lt != (a < b) {
		log.Fatal("homomorphic result is wrong!")
	}
	fmt.Println("OK")

	// Show the compact binary structure (Fig. 5/6 format).
	if err := checkConst(prog); err != nil {
		log.Fatal(err)
	}
}

func checkConst(prog *core.Program) error {
	if err := prog.Netlist.Validate(); err != nil {
		return err
	}
	_ = circuit.ConstTrue // referenced to show the IR surface in docs
	return nil
}
