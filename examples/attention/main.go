// Encrypted self-attention: build a BERT-style single-head self-attention
// layer from ChiselTorch tensor primitives (matmul, transpose, relu),
// compile it to TFHE gates, and run it homomorphically — the paper's
// demonstration that non-native layers compose from Table I's primitives.
//
//	go run ./examples/attention
package main

import (
	"fmt"
	"log"
	"math"
	"time"

	"pytfhe/internal/backend"
	"pytfhe/internal/chiseltorch"
	"pytfhe/internal/core"
	"pytfhe/internal/models"
	"pytfhe/internal/params"
	"pytfhe/internal/vipbench"
)

func main() {
	// A mid-size attention layer for compile-time statistics. (The paper's
	// full Attention_S, hidden 32, compiles to ~7.4M gates — run
	// `pytfhe compile` or cmd/experiments for the full build.)
	full := models.AttentionS().Scaled(4, 16)
	fmt.Printf("compiling %s (seq=%d, hidden=%d, Fixed(8,8))...\n", full.Name, full.Seq, full.Hidden)
	t0 := time.Now()
	w, err := vipbench.CompileAttention(full, chiseltorch.NewFixed(8, 8))
	if err != nil {
		log.Fatal(err)
	}
	s := w.Netlist.ComputeStats()
	fmt.Printf("  %d gates (%d bootstrapped), depth %d (compiled in %v)\n",
		s.Gates, s.Bootstrapped, s.Depth, time.Since(t0).Round(time.Millisecond))

	// Homomorphic run of a small layer (a narrow fixed-point type keeps
	// the encrypted-by-encrypted score matmuls cheap on a laptop).
	spec := models.AttentionS().Scaled(2, 2)
	ws, err := vipbench.CompileAttention(spec, chiseltorch.NewFixed(3, 3))
	if err != nil {
		log.Fatal(err)
	}
	prog, err := core.Compile(ws.Netlist)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nhomomorphic attention (seq=%d, hidden=%d): %d gates\n",
		spec.Seq, spec.Hidden, prog.Stats.Bootstrapped)

	kp, err := core.GenerateKeys(params.Test())
	if err != nil {
		log.Fatal(err)
	}
	in := make([]float64, spec.Seq*spec.Hidden)
	for i := range in {
		in[i] = math.Sin(float64(i)) / 2
	}
	bits, err := ws.Compiled.EncodeInput(in)
	if err != nil {
		log.Fatal(err)
	}
	want, err := ws.Compiled.Infer(in)
	if err != nil {
		log.Fatal(err)
	}

	start := time.Now()
	outs, err := core.Run(prog, backend.NewPool(kp.Cloud, 4), kp.EncryptBits(bits))
	if err != nil {
		log.Fatal(err)
	}
	got := ws.Compiled.DecodeOutput(kp.DecryptBits(outs))
	fmt.Printf("  evaluated in %v\n", time.Since(start).Round(time.Millisecond))
	for i := range want {
		if want[i] != got[i] {
			log.Fatalf("output %d mismatch: %g vs %g", i, want[i], got[i])
		}
	}
	fmt.Printf("  context[0] = %.3f ... matches plaintext reference. OK\n", got[0])
}
