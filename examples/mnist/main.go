// Privacy-preserving MNIST inference: declare the paper's Fig. 4 CNN with
// the ChiselTorch API, compile it to a TFHE gate program, and classify an
// encrypted digit.
//
// The homomorphic run uses a reduced image size and the test parameter set
// so the example completes in seconds; the full MNIST_S (28×28, Linear(576,
// 10)) is compiled and inspected as well, with plaintext inference as the
// functional check.
//
//	go run ./examples/mnist
package main

import (
	"fmt"
	"log"
	"math"
	"time"

	"pytfhe/internal/backend"
	"pytfhe/internal/chiseltorch"
	"pytfhe/internal/core"
	"pytfhe/internal/models"
	"pytfhe/internal/params"
	"pytfhe/internal/vipbench"
)

func main() {
	// --- full-size MNIST_S: compile and inspect -------------------------
	full := models.MNISTS()
	fmt.Printf("compiling %s (%dx%d, Linear(%d,%d), Fixed(8,8))...\n",
		full.Name, full.Image, full.Image, full.FlatSize(), full.Classes)
	t0 := time.Now()
	w, err := vipbench.CompileMNIST(full, chiseltorch.NewFixed(8, 8))
	if err != nil {
		log.Fatal(err)
	}
	s := w.Netlist.ComputeStats()
	fmt.Printf("  %d gates (%d bootstrapped), depth %d, %d wavefronts (compiled in %v)\n",
		s.Gates, s.Bootstrapped, s.Depth, s.Levels, time.Since(t0).Round(time.Millisecond))

	// Plaintext inference on a synthetic digit.
	img := syntheticDigit(full.Image)
	logits, err := w.Compiled.Infer(img)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  plaintext logits: %s -> class %d\n", fmtVec(logits), argmax(logits))

	// --- homomorphic inference on a scaled model ------------------------
	spec := full.Scaled(5)
	fmt.Printf("\nhomomorphic inference with %s (%dx%d) under test parameters...\n",
		spec.Name, spec.Image, spec.Image)
	ws, err := vipbench.CompileMNIST(spec, chiseltorch.NewFixed(8, 8))
	if err != nil {
		log.Fatal(err)
	}
	prog, err := core.Compile(ws.Netlist)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  %d gates to evaluate\n", prog.Stats.Bootstrapped)

	kp, err := core.GenerateKeys(params.Test())
	if err != nil {
		log.Fatal(err)
	}
	small := syntheticDigit(spec.Image)
	bits, err := ws.Compiled.EncodeInput(small)
	if err != nil {
		log.Fatal(err)
	}
	want, err := ws.Compiled.Infer(small)
	if err != nil {
		log.Fatal(err)
	}

	start := time.Now()
	outs, err := core.Run(prog, backend.NewPool(kp.Cloud, 4), kp.EncryptBits(bits))
	if err != nil {
		log.Fatal(err)
	}
	elapsed := time.Since(start)
	got := ws.Compiled.DecodeOutput(kp.DecryptBits(outs))
	fmt.Printf("  homomorphic logits: %s -> class %d (in %v, %.0f gates/s)\n",
		fmtVec(got), argmax(got), elapsed.Round(time.Millisecond),
		float64(prog.Stats.Bootstrapped)/elapsed.Seconds())

	for i := range want {
		if math.Abs(want[i]-got[i]) > 1e-9 {
			log.Fatalf("logit %d mismatch: plaintext %g vs homomorphic %g", i, want[i], got[i])
		}
	}
	fmt.Println("  homomorphic result matches plaintext inference bit-for-bit. OK")
}

// syntheticDigit draws a bright diagonal stroke on a dark background.
func syntheticDigit(size int) []float64 {
	img := make([]float64, size*size)
	for y := 0; y < size; y++ {
		for x := 0; x < size; x++ {
			d := math.Abs(float64(x - y))
			img[y*size+x] = math.Max(0, 0.9-0.3*d)
		}
	}
	return img
}

func argmax(v []float64) int {
	best := 0
	for i, x := range v {
		if x > v[best] {
			best = i
		}
	}
	return best
}

func fmtVec(v []float64) string {
	out := "["
	for i, x := range v {
		if i > 0 {
			out += " "
		}
		out += fmt.Sprintf("%.2f", x)
	}
	return out + "]"
}
