// Multi-bit LUT execution: the synthesized path to programmable
// bootstrapping. The paper's §II.B highlights TFHE's "fast programmable
// bootstrapping which reduces the noise of a ciphertext while
// simultaneously performing an arbitrary lookup-table operation"; this
// example shows the compiler putting that capability to work on ordinary
// boolean circuits. The synth lut-cluster pass collapses fanout-free cones
// of 2-input gates into k-input LUT gates (k <= 3), each evaluated with a
// single programmable bootstrap — a parity chain that costs one bootstrap
// per XOR on the classic path costs one bootstrap per *three* XORs after
// clustering, bit-exactly.
//
//	go run ./examples/lut
package main

import (
	"fmt"
	"log"
	"time"

	"pytfhe/internal/backend"
	"pytfhe/internal/circuit"
	"pytfhe/internal/core"
	"pytfhe/internal/params"
)

// demoNetlist builds the cone-heavy shape lut-cluster is for: an 8-input
// parity chain (seven XORs in a line, every interior node single-use) and
// a majority vote over three AND pairs. `pytfhe check -examples` analyzes
// this same netlist; keep the two in sync.
func demoNetlist() *circuit.Netlist {
	b := circuit.NewBuilder("lut-demo", circuit.AllOptimizations())
	xs := b.Inputs("x", 8)
	par := xs[0]
	for _, x := range xs[1:] {
		par = b.Xor(par, x)
	}
	b.Output("parity", par)
	maj := b.LUT(0xE8, // MAJ(a,b,c)
		b.And(xs[0], xs[1]),
		b.And(xs[2], xs[3]),
		b.And(xs[4], xs[5]))
	b.Output("majority", maj)
	return b.MustBuild()
}

func main() {
	nl := demoNetlist()

	// Compile twice: the classic pipeline, and the same pipeline with the
	// lut-cluster pass appended.
	classic, err := core.Compile(nl)
	if err != nil {
		log.Fatal(err)
	}
	clustered, err := core.CompileLUT(nl)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("classic:   %d gates, %d bootstraps\n",
		classic.Stats.Gates, classic.Stats.Bootstrapped)
	fmt.Printf("clustered: %d gates, %d bootstraps (%d multi-input LUTs)\n",
		clustered.Stats.Gates, clustered.Stats.Bootstrapped, clustered.Stats.LUTs)

	fmt.Println("generating keys (test parameters)...")
	kp, err := core.GenerateKeys(params.Test())
	if err != nil {
		log.Fatal(err)
	}
	be := backend.NewSingle(kp.Cloud)

	for _, m := range []uint64{0b10110101, 0b00001111, 0b11100111} {
		bits := make([]bool, 8)
		for i := range bits {
			bits[i] = m>>uint(i)&1 == 1
		}
		want, err := nl.Evaluate(bits)
		if err != nil {
			log.Fatal(err)
		}

		start := time.Now()
		outs, err := core.Run(clustered, be, kp.EncryptBits(bits))
		if err != nil {
			log.Fatal(err)
		}
		got := kp.DecryptBits(outs)
		fmt.Printf("  x=%08b  parity=%s majority=%s  (%v)\n",
			m, bit(got[0]), bit(got[1]), time.Since(start).Round(time.Millisecond))
		for i := range want {
			if got[i] != want[i] {
				log.Fatalf("output %d: clustered path %v, cleartext reference %v", i, got[i], want[i])
			}
		}

		// The classic binary computes the identical function — more
		// bootstraps, same bits.
		couts, err := core.Run(classic, be, kp.EncryptBits(bits))
		if err != nil {
			log.Fatal(err)
		}
		for i, c := range kp.DecryptBits(couts) {
			if c != want[i] {
				log.Fatalf("output %d: classic path %v, cleartext reference %v", i, c, want[i])
			}
		}
	}
	fmt.Println("clustered and classic paths agree under encryption. OK")
}

func bit(v bool) string {
	if v {
		return "1"
	}
	return "0"
}
