// Programmable bootstrapping: evaluate an arbitrary lookup table *during*
// the noise refresh — the TFHE capability the paper's §II.B highlights
// ("fast programmable bootstrapping which reduces the noise of a
// ciphertext while simultaneously performing an arbitrary lookup-table
// operation"). Here the server squares an encrypted digit (mod 8) with a
// single bootstrap, without ever seeing it.
//
//	go run ./examples/lut
package main

import (
	"fmt"
	"log"
	"time"

	"pytfhe/internal/core"
	"pytfhe/internal/params"
	"pytfhe/internal/tfhe/boot"
	"pytfhe/internal/tfhe/lwe"
	"pytfhe/internal/torus"
)

func main() {
	fmt.Println("generating keys (test parameters)...")
	kp, err := core.GenerateKeys(params.Test())
	if err != nil {
		log.Fatal(err)
	}
	p := kp.Secret.Params
	eval := boot.NewEvaluator(kp.Cloud)

	// Message space of 8 slots; inputs must stay in [0, 4) (the negacyclic
	// half-torus — see boot.BootstrapLUT).
	const msize = 8
	square := func(m int) torus.Torus32 {
		return torus.ModSwitchToTorus32(int32((m*m)%msize), msize)
	}

	for m := int32(0); m < 4; m++ {
		// Client: encrypt the digit.
		in := kp.EncryptMessage(m, msize)

		// Server: one programmable bootstrap evaluates the table.
		out := lwe.NewSample(p.LWEDimension)
		start := time.Now()
		if err := eval.BootstrapLUT(out, square, msize, in); err != nil {
			log.Fatal(err)
		}
		elapsed := time.Since(start)

		// Client: decrypt.
		got := kp.DecryptMessage(out, msize)
		fmt.Printf("  Enc(%d) --PBS(square mod 8)--> Enc(%d)   (%v)\n", m, got, elapsed.Round(time.Microsecond))
		if got != (m*m)%msize {
			log.Fatalf("wrong result: %d² mod 8 = %d, got %d", m, (m*m)%msize, got)
		}
	}
	fmt.Println("all lookups correct under encryption. OK")
}
