// Distributed execution: spin up a coordinator and several worker
// processes-worth of goroutines connected over real TCP sockets (the
// in-repo equivalent of a Ray cluster), broadcast the cloud key, and
// evaluate a VIP-Bench kernel with the wavefront schedule of Algorithm 1.
//
// In a real deployment the workers run `pytfhe-worker -join <addr>` on
// separate machines; here they share the process but still talk through
// the loopback interface, so every gate's ciphertexts cross a socket
// exactly as the paper's Fig. 7 communication profile describes.
//
//	go run ./examples/distributed
package main

import (
	"fmt"
	"log"
	"time"

	"pytfhe/internal/backend"
	"pytfhe/internal/cluster"
	"pytfhe/internal/core"
	"pytfhe/internal/params"
	"pytfhe/internal/vipbench"
)

func main() {
	const workers = 3
	const slotsPerWorker = 2

	fmt.Println("generating keys (test parameters)...")
	kp, err := core.GenerateKeys(params.Test())
	if err != nil {
		log.Fatal(err)
	}

	coord, err := cluster.NewCoordinator(kp.Cloud, "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer coord.Close()
	fmt.Printf("coordinator listening on %s\n", coord.Addr())
	for i := 0; i < workers; i++ {
		go func(id int) {
			if err := cluster.NewWorker(slotsPerWorker).Serve(coord.Addr()); err != nil {
				log.Printf("worker %d: %v", id, err)
			}
		}(i)
	}
	if err := coord.AcceptWorkers(workers); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%d workers joined (%d slots total), cloud key broadcast\n",
		workers, workers*slotsPerWorker)

	bench, err := vipbench.ByName("roberts-cross")
	if err != nil {
		log.Fatal(err)
	}
	nl, err := bench.Build()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("workload: %s (%d gates)\n", bench.Name, len(nl.Gates))

	// An 8x8 test image with a vertical edge.
	vals := make([]uint64, 64)
	for y := 0; y < 8; y++ {
		for x := 4; x < 8; x++ {
			vals[y*8+x] = 200
		}
	}
	bits, err := bench.EncodeInputs(vals)
	if err != nil {
		log.Fatal(err)
	}

	start := time.Now()
	outs, err := coord.Run(nl, kp.EncryptBits(bits))
	if err != nil {
		log.Fatal(err)
	}
	elapsed := time.Since(start)
	st := coord.LastStat
	fmt.Printf("distributed run: %v (%d wavefronts, %d bootstraps, %.1f KB shipped)\n",
		elapsed.Round(time.Millisecond), st.Levels, st.Bootstraps, float64(st.BytesSent)/1024)

	got, err := bench.DecodeOutputs(kp.DecryptBits(outs))
	if err != nil {
		log.Fatal(err)
	}
	want := bench.Ref(vals)
	for i := range want {
		if got[i] != want[i] {
			log.Fatalf("output %d: distributed %d, reference %d", i, got[i], want[i])
		}
	}
	fmt.Println("edge map matches the plaintext reference. OK")

	// Compare against the in-process single-core backend.
	single := backend.NewSingle(kp.Cloud)
	start = time.Now()
	if _, err := single.Run(nl, kp.EncryptBits(bits)); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("single-core reference: %v\n", time.Since(start).Round(time.Millisecond))
}
