.PHONY: build test verify bench

build:
	go build ./...

test:
	go test ./...

# vet + build + race-checked tests on the concurrency-heavy packages.
verify:
	./scripts/verify.sh

bench:
	go test -bench=. -benchmem -run '^$$' .
