.PHONY: build test lint check verify serve-test bench bench-kernel batch-test qos-test lut-test

build:
	go build ./...

test:
	go test ./...

# Static analysis: crypto-safety/concurrency analyzers over the Go module.
lint:
	go run ./cmd/pytfhelint ./...

# Semantic analysis: noise-budget dataflow + plan-soundness verification
# over the bench netlist and every example circuit (`pytfhe check`).
check:
	go run ./cmd/pytfhe check -bench -examples

# gofmt + vet + lint + build + race-checked tests on the concurrency-heavy
# packages + netlist lint of a compiled benchmark.
verify:
	./scripts/verify.sh

# Race-checked tests for the serving stack: shared executor, wire format,
# and the pytfhed server (concurrent sessions, backpressure, drain).
serve-test:
	go test -race ./internal/serve/... ./internal/wire/... ./internal/backend/...

# Race-checked QoS + observability subsystem: the weighted fair queue,
# per-tenant quotas, byte-accounted LRU caches, the Prometheus-text
# telemetry registry, the shared executor's fairness/quota/key-release
# behavior, and the pytfhed cache-eviction, key-lifecycle, quota, and
# /metrics end-to-end scenarios.
qos-test:
	go test -race ./internal/qos/... ./internal/telemetry/...
	go test -race -run 'TestShared(FairnessUnderLoad|TenantQuota|ReleaseKey)' ./internal/backend/
	go test -race -run 'TestServe(PlanCacheEviction|KeyLifecycleRelease|TenantQuota|MetricsEndpoint)' ./internal/serve/

# Race-checked multi-bit LUT path, end to end: truth-table solving and
# feasibility (logic), the circuit node and asm instruction formats, the
# lut-cluster synthesis pass, the programmable-bootstrap kernel, the LUT
# noise model, bit-exactness across every executor (sync/async/shared),
# plan compile/dedup/replay, shard hashing, cluster dispatch, the
# pytfhed -lut serving surface, and the Fig. 14 LUT sweep.
lut-test:
	go test -race -run 'LUT' ./internal/logic/ ./internal/circuit/ ./internal/asm/ \
		./internal/synth/ ./internal/tfhe/boot/ ./internal/tfhe/gate/ ./internal/tfhe/noise/ \
		./internal/exec/ ./internal/backend/ ./internal/plan/ ./internal/shard/ \
		./internal/cluster/ ./internal/serve/ ./internal/experiments/ ./cmd/pytfhe/

# Go benchmarks plus the plan capture/replay measurement, which lands as
# BENCH_PLAN.json — the replay performance trajectory. The -planbaseline
# flag is the bench-parity guard: the fresh Async and Planned throughputs
# must stay within 10% of the committed baseline.
bench:
	go test -bench=. -benchmem -run '^$$' .
	go run ./cmd/experiments -quick -planbench -planbaseline BENCH_PLAN.json -planout BENCH_PLAN.json

# Kernel hot-path microbenchmarks: the forward/inverse negacyclic FFT
# passes (full and half-complex), the CMux blind-rotation step single vs
# batched, and the end-to-end single-vs-batched bootstrap sweep.
bench-kernel:
	go test -bench 'BenchmarkKernel' -benchmem -run '^$$' ./internal/torus/ ./internal/tfhe/tgsw/
	go test -bench 'BenchmarkBatchBootstrap' -benchmem -run '^$$' .

# Race-checked equivalence tests for the batched blind-rotation engine:
# BootstrapBatch/BinaryBatch bit-exactness against the single path, the
# lock-free twiddle cache, and the batch-draining executors.
batch-test:
	go test -race -run 'Batch|Tables' ./internal/torus/ ./internal/tfhe/tgsw/ ./internal/tfhe/boot/ ./internal/tfhe/gate/
	go test -race -run 'Batch|Matrix|Shared|Async|Replay' ./internal/exec/ ./internal/backend/ ./internal/plan/
	go test -race -run 'TestServeCrossRequestBatching' ./internal/serve/
