.PHONY: build test lint verify bench

build:
	go build ./...

test:
	go test ./...

# Static analysis: crypto-safety/concurrency analyzers over the Go module.
lint:
	go run ./cmd/pytfhelint ./...

# gofmt + vet + lint + build + race-checked tests on the concurrency-heavy
# packages + netlist lint of a compiled benchmark.
verify:
	./scripts/verify.sh

bench:
	go test -bench=. -benchmem -run '^$$' .
