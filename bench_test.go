// Benchmarks regenerating every table and figure of the paper's evaluation
// (run with `go test -bench=. -benchmem`), plus ablations of the design
// choices called out in DESIGN.md §5. Custom metrics report the quantities
// the paper plots (gate counts, speedups) alongside wall-clock time.
package pytfhe_test

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"pytfhe/internal/backend"
	"pytfhe/internal/chiseltorch"
	"pytfhe/internal/circuit"
	"pytfhe/internal/core"
	"pytfhe/internal/experiments"
	"pytfhe/internal/frameworks"
	"pytfhe/internal/gpu"
	"pytfhe/internal/hdl"
	"pytfhe/internal/logic"
	"pytfhe/internal/models"
	"pytfhe/internal/params"
	"pytfhe/internal/sched"
	"pytfhe/internal/synth"
	"pytfhe/internal/tfhe/gate"
	"pytfhe/internal/torus"
	"pytfhe/internal/trand"
	"pytfhe/internal/vipbench"
)

// benchCfg is the configuration every figure benchmark uses: scaled
// workloads and a fixed nominal gate time so results are stable across
// machines.
var benchCfg = experiments.Config{Quick: true, GateTime: 15 * time.Millisecond}

// Keys at test parameters, generated once.
var (
	keyOnce sync.Once
	keyPair *core.KeyPair
)

func testKeys(b *testing.B) *core.KeyPair {
	keyOnce.Do(func() {
		kp, err := core.GenerateKeysSeeded(params.Test(), []byte("bench-keys"))
		if err != nil {
			panic(err)
		}
		keyPair = kp
	})
	return keyPair
}

// --- crypto microbenchmarks (the calibration quantities) ---

// BenchmarkGateBootstrapTestParams times one bootstrapped NAND at the fast
// test parameter set.
func BenchmarkGateBootstrapTestParams(b *testing.B) {
	kp := testKeys(b)
	benchGate(b, kp)
}

// BenchmarkGateBootstrapDefault128 times one bootstrapped NAND at the
// production 128-bit parameters — the calibration point for every
// simulated platform (Fig. 7's total).
func BenchmarkGateBootstrapDefault128(b *testing.B) {
	kp, err := core.GenerateKeysSeeded(params.Default128(), []byte("bench-full"))
	if err != nil {
		b.Fatal(err)
	}
	benchGate(b, kp)
}

func benchGate(b *testing.B, kp *core.KeyPair) {
	eng := gate.NewEngine(kp.Cloud)
	rng := trand.NewSeeded([]byte("bench"))
	x := gate.NewCiphertext(kp.Cloud.Params)
	y := gate.NewCiphertext(kp.Cloud.Params)
	out := gate.NewCiphertext(kp.Cloud.Params)
	gate.Encrypt(x, true, kp.Secret, rng)
	gate.Encrypt(y, false, kp.Secret, rng)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := eng.Binary(logic.NAND, out, x, y); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBatchBootstrap compares the single-gate bootstrap path against
// the batched blind-rotation engine at batch sizes 1, 4, 16 and 64: each
// iteration evaluates 64 independent NAND gates, sequentially on the
// single path and in fixed-size BootstrapBatch chunks on the batched path.
// The figure of merit is boots/s; the batched path must reach ≥1.5× the
// single path at batch ≥16 (the BENCH_PLAN.json parity guard tracks it).
func BenchmarkBatchBootstrap(b *testing.B) {
	kp := testKeys(b)
	rng := trand.NewSeeded([]byte("bench-batch"))
	const lanes = 64
	kinds := make([]logic.Kind, lanes)
	xs := make([]*gate.Ciphertext, lanes)
	ys := make([]*gate.Ciphertext, lanes)
	outs := make([]*gate.Ciphertext, lanes)
	for m := 0; m < lanes; m++ {
		kinds[m] = logic.NAND
		xs[m] = gate.NewCiphertext(kp.Cloud.Params)
		ys[m] = gate.NewCiphertext(kp.Cloud.Params)
		outs[m] = gate.NewCiphertext(kp.Cloud.Params)
		gate.Encrypt(xs[m], m%2 == 0, kp.Secret, rng)
		gate.Encrypt(ys[m], m%3 == 0, kp.Secret, rng)
	}
	b.Run("single", func(b *testing.B) {
		eng := gate.NewEngine(kp.Cloud)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for m := 0; m < lanes; m++ {
				if err := eng.Binary(kinds[m], outs[m], xs[m], ys[m]); err != nil {
					b.Fatal(err)
				}
			}
		}
		b.ReportMetric(float64(b.N*lanes)/b.Elapsed().Seconds(), "boots/s")
	})
	for _, size := range []int{1, 4, 16, 64} {
		b.Run(fmt.Sprintf("batch-%d", size), func(b *testing.B) {
			eng := gate.NewEngine(kp.Cloud)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for lo := 0; lo < lanes; lo += size {
					if err := eng.BinaryBatch(kinds[lo:lo+size], outs[lo:lo+size], xs[lo:lo+size], ys[lo:lo+size]); err != nil {
						b.Fatal(err)
					}
				}
			}
			b.ReportMetric(float64(b.N*lanes)/b.Elapsed().Seconds(), "boots/s")
		})
	}
}

// BenchmarkKeyGenerationTestParams times full key generation (bootstrapping
// key in the Fourier domain plus the key-switching key).
func BenchmarkKeyGenerationTestParams(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := core.GenerateKeysSeeded(params.Test(), []byte{byte(i)}); err != nil {
			b.Fatal(err)
		}
	}
}

// --- figure/table benchmarks ---

// BenchmarkFig07GateProfile regenerates the Fig. 7 per-gate breakdown.
func BenchmarkFig07GateProfile(b *testing.B) {
	for i := 0; i < b.N; i++ {
		g, err := experiments.Fig07GateProfile(params.Test(), 2)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(g.BlindRotate)/float64(g.Total)*100, "blindrotate-%")
		b.ReportMetric(g.CommFraction*100, "comm-%")
	}
}

// BenchmarkFig08CuFHEBreakdown regenerates the cuFHE timeline of Fig. 8.
func BenchmarkFig08CuFHEBreakdown(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tl := experiments.Fig0809GPUTimelines(benchCfg)
		b.ReportMetric(tl.CuFHE.Makespan.Seconds()*1e3, "cufhe-ms")
	}
}

// BenchmarkFig09GraphBreakdown regenerates the CUDA-graph timeline of
// Fig. 9.
func BenchmarkFig09GraphBreakdown(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tl := experiments.Fig0809GPUTimelines(benchCfg)
		b.ReportMetric(tl.Graph.Makespan.Seconds()*1e3, "graph-ms")
	}
}

// BenchmarkFig10DistributedCPU regenerates the distributed-CPU scaling
// figure; the reported metric is the best 4-node speedup.
func BenchmarkFig10DistributedCPU(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Fig10DistributedCPU(benchCfg)
		if err != nil {
			b.Fatal(err)
		}
		best := rows[len(rows)-1]
		b.ReportMetric(best.Speedup1Node, "speedup-1node")
		b.ReportMetric(best.Speedup4Nodes, "speedup-4nodes")
	}
}

// BenchmarkFig11GPUvsCuFHE regenerates the GPU-vs-cuFHE figure; the metric
// is the best A5000 speedup (paper: up to 61.5×).
func BenchmarkFig11GPUvsCuFHE(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Fig11GPU(benchCfg)
		if err != nil {
			b.Fatal(err)
		}
		best := rows[len(rows)-1]
		b.ReportMetric(best.SpeedupA5000, "speedup-a5000")
		b.ReportMetric(best.Speedup4090, "speedup-4090")
	}
}

// BenchmarkFig12TranspilerCross regenerates the frontend/backend cross of
// Fig. 12; the metric is the GT+PyT CPU speedup (paper: 52×).
func BenchmarkFig12TranspilerCross(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Fig12TranspilerCross(benchCfg)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if r.Config == "GT+PyT CPU (4 nodes)" {
				b.ReportMetric(r.Speedup, "gtpyt-cpu-speedup")
			}
		}
	}
}

// BenchmarkFig13FrameworkRuntime regenerates the Fig. 13 runtimes.
func BenchmarkFig13FrameworkRuntime(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cmp, err := experiments.Fig13Table4Comparison(benchCfg)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(cmp.Speedups["PyTFHE Single Core"]["transpiler"], "vs-transpiler")
	}
}

// BenchmarkTable4Speedups regenerates the Table IV matrix; the metric is
// the 4090 speedup over the Transpiler (paper: 4070×).
func BenchmarkTable4Speedups(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cmp, err := experiments.Fig13Table4Comparison(benchCfg)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(cmp.Speedups["PyTFHE 4090 GPU"]["transpiler"], "4090-vs-transpiler")
	}
}

// BenchmarkFig14GateDistribution regenerates the gate census; metrics are
// the PyTFHE/Cingulata and PyTFHE/E3 ratios (paper: 0.653 and 0.536).
func BenchmarkFig14GateDistribution(b *testing.B) {
	for i := 0; i < b.N; i++ {
		d, err := experiments.Fig14GateDistribution(benchCfg)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(d.Counts["pytfhe"])/float64(d.Counts["cingulata"]), "vs-cingulata")
		b.ReportMetric(float64(d.Counts["pytfhe"])/float64(d.Counts["e3"]), "vs-e3")
	}
}

// --- end-to-end execution benchmarks ---

// BenchmarkPoolBackend measures real homomorphic throughput of the
// wavefront pool backend on a VIP-Bench kernel at test parameters.
func BenchmarkPoolBackend(b *testing.B) {
	kp := testKeys(b)
	bench, err := vipbench.ByName("hamming-distance")
	if err != nil {
		b.Fatal(err)
	}
	nl, err := bench.Build()
	if err != nil {
		b.Fatal(err)
	}
	vals := make([]uint64, len(bench.InputBits))
	bits, _ := bench.EncodeInputs(vals)
	be := backend.NewPool(kp.Cloud, 2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := be.Run(nl, kp.EncryptBits(bits)); err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(be.Stats.GatesPerSec, "gates/s")
		b.ReportMetric(be.Stats.BootstrapsPerSec, "boots/s")
	}
}

// rippleImbalanced builds a deep, irregular netlist of ripple-carry-style
// serial chains with unequal depths. Most wavefronts hold five ready gates
// — one more than the four benchmark workers — so the barriered executor
// pays a nearly-empty second round per level (three workers idle on the
// remainder gate), while the dependency-driven executor streams the next
// level's ready gates into that slack.
func rippleImbalanced() *circuit.Netlist {
	b := circuit.NewBuilder("ripple-imbalanced", circuit.NoOptimizations())
	depths := []int{30, 30, 30, 30, 30, 12, 6}
	ins := b.Inputs("x", len(depths)+1)
	for c, depth := range depths {
		cur := ins[c]
		for d := 0; d < depth; d++ {
			cur = b.Gate(logic.NAND, cur, ins[len(depths)])
		}
		b.Output("o", cur)
	}
	return b.MustBuild()
}

// BenchmarkAsyncBackend compares the barriered Pool and the barrier-free
// Async executor at equal worker counts on the imbalanced ripple workload
// (real homomorphic evaluation at test parameters). The async executor
// must report strictly higher throughput at ≥4 workers.
func BenchmarkAsyncBackend(b *testing.B) {
	kp := testKeys(b)
	nl := rippleImbalanced()
	bits := make([]bool, nl.NumInputs)
	const workers = 4
	b.Run("pool-4w", func(b *testing.B) {
		be := backend.NewPool(kp.Cloud, workers)
		for i := 0; i < b.N; i++ {
			if _, err := be.Run(nl, kp.EncryptBits(bits)); err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(be.Stats.GatesPerSec, "gates/s")
			b.ReportMetric(be.Stats.BootstrapsPerSec, "boots/s")
		}
	})
	b.Run("async-4w", func(b *testing.B) {
		be := backend.NewAsync(kp.Cloud, workers)
		for i := 0; i < b.N; i++ {
			if _, err := be.Run(nl, kp.EncryptBits(bits)); err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(be.Stats.GatesPerSec, "gates/s")
			b.ReportMetric(be.Stats.BootstrapsPerSec, "boots/s")
			b.ReportMetric(100*be.Stats.Utilization, "util-%")
			b.ReportMetric(float64(be.Stats.AvgQueueWait.Microseconds()), "qwait-µs")
		}
	})
}

// BenchmarkPlannedReplay compares the capture/replay backend against the
// dynamic executors on the imbalanced ripple workload: plan replay vs the
// barrier-free Async executor vs the multi-tenant Shared executor, all at
// four workers. Boots/s is logical bootstraps per second — the program's
// effective throughput. The plan backend must report ≥1.2× Async: capture
// pays the scheduling and the exact functional deduplication once, so
// replay executes only the netlist's distinct boolean functions (the
// periodic NAND chains collapse from 168 logical bootstraps to 14).
func BenchmarkPlannedReplay(b *testing.B) {
	kp := testKeys(b)
	nl := rippleImbalanced()
	bits := make([]bool, nl.NumInputs)
	boots := float64(nl.ComputeStats().Bootstrapped)
	const workers = 4
	b.Run("async-4w", func(b *testing.B) {
		be := backend.NewAsync(kp.Cloud, workers)
		for i := 0; i < b.N; i++ {
			if _, err := be.Run(nl, kp.EncryptBits(bits)); err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(be.Stats.BootstrapsPerSec, "boots/s")
		}
	})
	b.Run("shared-4w", func(b *testing.B) {
		ex := backend.NewShared(workers)
		defer ex.Close()
		key, err := ex.RegisterKey(kp.Cloud)
		if err != nil {
			b.Fatal(err)
		}
		for i := 0; i < b.N; i++ {
			start := time.Now()
			if _, err := ex.Submit(context.Background(), key, nl, kp.EncryptBits(bits)); err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(boots/time.Since(start).Seconds(), "boots/s")
		}
	})
	b.Run("plan-4w", func(b *testing.B) {
		be := backend.NewPlanned(kp.Cloud, workers)
		// Warm-up run pays the capture; the timed runs replay the cache.
		if _, err := be.Run(nl, kp.EncryptBits(bits)); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := be.Run(nl, kp.EncryptBits(bits)); err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(be.Stats.BootstrapsPerSec, "boots/s")
			b.ReportMetric(float64(be.PlanStats.ExecBootstraps), "exec-bootstraps")
		}
	})
}

// BenchmarkCompileMNISTS measures ChiselTorch compile time for the scaled
// MNIST_S model.
func BenchmarkCompileMNISTS(b *testing.B) {
	spec := models.MNISTS().Scaled(10)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		w, err := vipbench.CompileMNIST(spec, chiseltorch.NewFixed(8, 8))
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(len(w.Netlist.Gates)), "gates")
	}
}

// --- ablations (DESIGN.md §5) ---

// BenchmarkAblationOptimizerOff measures the gate-count cost of disabling
// the synthesis pipeline on MNIST_S: the metric is unoptimized/optimized.
func BenchmarkAblationOptimizerOff(b *testing.B) {
	spec := models.MNISTS().Scaled(10)
	for i := 0; i < b.N; i++ {
		// The DSL path lets us build the same model with and without the
		// builder optimizations.
		opt, err := frameworks.PyTFHEDSL().CompileMNIST(spec)
		if err != nil {
			b.Fatal(err)
		}
		res, err := synth.Optimize(opt)
		if err != nil {
			b.Fatal(err)
		}
		raw, err := frameworks.E3().CompileMNIST(spec) // template lowering, no optimization
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(len(raw.Gates))/float64(len(res.Netlist.Gates)), "unopt/opt")
	}
}

// BenchmarkAblationDataTypes sweeps the paper's quantization trade-off:
// MNIST_S gate counts at Fixed(4,4), Fixed(8,8) and Float(8,8). (SInt is
// omitted: integer models need integer weights, and the shared spec's
// weights are fractional.)
func BenchmarkAblationDataTypes(b *testing.B) {
	spec := models.MNISTS().Scaled(8)
	dts := []chiseltorch.DType{chiseltorch.NewFixed(4, 4), chiseltorch.NewFixed(8, 8), chiseltorch.NewFloat(8, 8)}
	names := []string{"fixed44", "fixed88", "float88"}
	for i := 0; i < b.N; i++ {
		for j, dt := range dts {
			w, err := vipbench.CompileMNIST(spec, dt)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(float64(len(w.Netlist.Gates)), names[j]+"-gates")
		}
	}
}

// BenchmarkAblationGPUBatchSize sweeps the CUDA-graph batch size; tiny
// batches degenerate toward cuFHE-style behaviour.
func BenchmarkAblationGPUBatchSize(b *testing.B) {
	nl := buildWide(256, 8)
	dev := gpu.A5000()
	for i := 0; i < b.N; i++ {
		small := gpu.GraphDriver{Dev: dev, BatchGates: 8}.Simulate(nl)
		big := gpu.GraphDriver{Dev: dev, BatchGates: 100000}.Simulate(nl)
		b.ReportMetric(float64(small.Makespan)/float64(big.Makespan), "small/large-batch")
	}
}

// BenchmarkAblationCuFHEBatchCap sweeps cuFHE's batching assumption: even
// granting it SM-wide batches, the graph driver stays ahead on real DAGs.
func BenchmarkAblationCuFHEBatchCap(b *testing.B) {
	nl := buildWide(256, 8)
	dev := gpu.A5000()
	for i := 0; i < b.N; i++ {
		perGate := gpu.CuFHEDriver{Dev: dev, BatchCap: 1}.Simulate(nl)
		batched := gpu.CuFHEDriver{Dev: dev, BatchCap: dev.SMs}.Simulate(nl)
		graph := gpu.GraphDriver{Dev: dev}.Simulate(nl)
		b.ReportMetric(float64(perGate.Makespan)/float64(graph.Makespan), "pergate/graph")
		b.ReportMetric(float64(batched.Makespan)/float64(graph.Makespan), "batched/graph")
	}
}

// BenchmarkAblationDispatchGranularity compares per-gate dispatch cost
// against batched-per-level dispatch in the wavefront scheduler model.
func BenchmarkAblationDispatchGranularity(b *testing.B) {
	nl := buildWide(360, 10)
	gt := 15 * time.Millisecond
	perGate := sched.XeonNode(1, gt)
	perLevel := perGate
	perLevel.Cost.DispatchOverhead = 0
	perLevel.Cost.LevelSync = gt / 10
	for i := 0; i < b.N; i++ {
		a := sched.Simulate(nl, perGate)
		c := sched.Simulate(nl, perLevel)
		b.ReportMetric(float64(a.Makespan)/float64(c.Makespan), "pergate/perlevel")
	}
}

func buildWide(width, depth int) *circuit.Netlist {
	bld := circuit.NewBuilder("wide", circuit.NoOptimizations())
	ins := bld.Inputs("x", width+1)
	for w := 0; w < width; w++ {
		cur := ins[w]
		for d := 0; d < depth; d++ {
			cur = bld.Gate(logic.NAND, cur, ins[w+1])
		}
		bld.Output("o", cur)
	}
	return bld.MustBuild()
}

// BenchmarkAblationResynthesis measures how much of the Transpiler IR's
// AND/OR/NOT expansion the cut-size-2 resynthesis pass recovers when
// executing HLS-generated netlists on the rich TFHE gate set.
func BenchmarkAblationResynthesis(b *testing.B) {
	spec := models.MNISTS().Scaled(8)
	gt, err := frameworks.Transpiler().CompileMNIST(spec)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out, err := synth.Resynthesize(gt)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(len(gt.Gates))/float64(len(out.Gates)), "shrink-factor")
	}
}

// BenchmarkAblationFFTPair compares the pair-packed forward transform
// against two single transforms (the hot-loop optimization of the
// external product).
func BenchmarkAblationFFTPair(b *testing.B) {
	const n = 1024
	proc := torus.NewProcessor(n)
	p1 := torus.NewIntPoly(n)
	p2 := torus.NewIntPoly(n)
	for i := 0; i < n; i++ {
		p1.Coefs[i] = int32(i%127) - 64
		p2.Coefs[i] = int32(i%89) - 44
	}
	f1 := torus.NewFourierPoly(n)
	f2 := torus.NewFourierPoly(n)
	b.Run("paired", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			proc.IntPairToFourier(f1, f2, p1, p2)
		}
	})
	b.Run("singles", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			proc.IntToFourier(f1, p1)
			proc.IntToFourier(f2, p2)
		}
	})
}

// BenchmarkAblationAdderDepth compares ripple vs Kogge-Stone adders on the
// wavefront backend model: depth is wall-clock in PyTFHE's schedulers, so
// the prefix adder's extra gates buy latency on parallel platforms.
func BenchmarkAblationAdderDepth(b *testing.B) {
	build := func(cla bool) *circuit.Netlist {
		m := hdl.New("adders")
		a := m.InputBus("a", 32)
		bb := m.InputBus("b", 32)
		if cla {
			m.OutputBus("s", m.AddCLA(a, bb))
		} else {
			m.OutputBus("s", m.Add(a, bb))
		}
		return m.MustBuild()
	}
	ripple := build(false)
	cla := build(true)
	p := sched.XeonNode(1, 15*time.Millisecond)
	for i := 0; i < b.N; i++ {
		r := sched.Simulate(ripple, p)
		c := sched.Simulate(cla, p)
		b.ReportMetric(float64(r.Makespan)/float64(c.Makespan), "ripple/cla-latency")
		b.ReportMetric(float64(len(cla.Gates))/float64(len(ripple.Gates)), "cla/ripple-gates")
	}
}

// BenchmarkAblationLevelBarrier compares the level-synchronous wavefront
// schedule of Algorithm 1 against barrier-free event-driven dispatch.
func BenchmarkAblationLevelBarrier(b *testing.B) {
	ws, err := benchCfg.VIPWorkloads()
	if err != nil {
		b.Fatal(err)
	}
	// Use an imbalanced mid-size workload where barriers actually cost.
	var nl *circuit.Netlist
	for _, w := range ws {
		if w.Name == "edit-distance" {
			nl = w.Netlist
		}
	}
	p := sched.XeonNode(1, 15*time.Millisecond)
	for i := 0; i < b.N; i++ {
		syncRes := sched.Simulate(nl, p)
		asyncRes := sched.SimulateAsync(nl, p)
		b.ReportMetric(float64(syncRes.Makespan)/float64(asyncRes.Makespan), "barrier/async")
	}
}
